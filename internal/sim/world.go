// Package sim implements the execution model of the paper: a probabilistic
// automaton in the sense of Segala and Lynch, specialised to generalized
// dining-philosopher systems.
//
// A World holds the complete instantaneous state of a system: one PhilState
// per philosopher and one ForkState per fork (plus optional shared "globals"
// used only by the non-distributed baseline algorithms). Philosopher programs
// (package algo) describe, for the currently scheduled philosopher, the set of
// possible next atomic actions as Outcomes with probabilities; an adversary
// (a Scheduler) resolves the nondeterministic choice of which philosopher
// moves, and a PRNG (or, in the model checker, exhaustive branching) resolves
// the probabilistic choice among outcomes.
//
// # Protocol state versus run metrics
//
// A World separates two kinds of state. Protocol state is everything a
// philosopher program can observe: program counters, phases, fork selections
// and holdings, auxiliary registers, fork holders, nr values, request lists,
// guest books and the shared globals. Run metrics (meal counters, first-eat
// steps, waiting times, scheduling counts) are bookkeeping for experiment
// reports; they are excluded from Key and from clone equality. Clone copies
// both; CloneProtocol copies only the protocol state and leaves the metric
// slices nil, which the mutation helpers tolerate — this is what the model
// checker uses, since exploring a state space has no use for metrics. The
// per-(fork, philosopher) request-list and guest-book entries of all forks
// live in two flat backing arrays indexed by graph.Topology.SlotBase, so
// cloning a world is a handful of bulk copies instead of two small
// allocations per fork.
//
// # Key encoding
//
// Worlds are plain values: cloning copies all state, and AppendKey appends a
// compact binary encoding of the protocol-relevant state to a caller-held
// scratch buffer so that the model checker can identify revisited states
// without allocating. The encoding is, in order:
//
//   - per philosopher: PC byte; one flags byte packing the Phase (2 bits),
//     HasFirst, HasSecond and Crashed; uvarint(First+1); zigzag varints of
//     Aux[0] and Aux[1];
//   - per fork: uvarint(Holder+1); uvarint(NR); the request bits packed 8 per
//     byte; one byte per adjacency slot holding the guest-book rank+1 (0 for
//     "never signed"), where ranks number the distinct signing times of that
//     fork in increasing order — only the relative order of guest-book
//     entries is observable, so rank normalization keeps the state space
//     finite;
//   - uvarint(len(Globals)) followed by zigzag varints of the globals;
//   - for each adjacency slot carrying an in-flight fork grant (the
//     delayed-grants fault model, ascending slot index): uvarint(slot+1)
//     followed by the raw pending byte (in-flight bit plus remaining-delay
//     counter). Worlds without pending grants — every fault-free world, and
//     every fault-injected world whose grants have all been delivered — emit
//     no suffix at all, so the encoding is byte-identical to the pre-delay
//     format on the entire nil-fault state space.
//
// Given a fixed topology every field has a fixed position (the pending
// suffix is self-delimiting: it is a sequence of non-zero uvarint/byte pairs
// running to the end of the key), so the encoding is injective on observable
// protocol states. Key returns the same encoding as a string for
// convenience; hot paths should use AppendKey with a reused buffer.
package sim

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Phase is the coarse activity of a philosopher, as used in the paper's
// progress and lockout statements: thinking, in the trying section (hungry),
// or eating.
type Phase uint8

const (
	// Thinking means the philosopher is outside the trying section.
	Thinking Phase = iota
	// Hungry means the philosopher is in the trying section (steps 2..5 of
	// the algorithms): it wants to eat and is competing for forks.
	Hungry
	// Eating means the philosopher holds both forks and is eating.
	Eating
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Thinking:
		return "thinking"
	case Hungry:
		return "hungry"
	case Eating:
		return "eating"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// PhilState is the local state of one philosopher. All fields are values so
// that copying a PhilState copies the state.
type PhilState struct {
	// PC is the algorithm-specific program counter (line number of the
	// pseudo-code being executed next).
	PC uint8
	// Phase is the coarse phase; kept in sync by the World helpers.
	Phase Phase
	// First is the fork currently selected as "fork" in the pseudo-code
	// (the first fork to acquire), or graph.NoFork when no selection is
	// active.
	First graph.ForkID
	// HasFirst reports whether the philosopher currently holds First.
	HasFirst bool
	// HasSecond reports whether the philosopher currently holds the fork
	// opposite to First.
	HasSecond bool
	// Crashed reports whether the philosopher is currently crashed (removed
	// from the protocol by a fault model, holding nothing). It is protocol
	// state — neighbours observe a crashed philosopher exactly as an idle
	// thinking one, but the fault layer branches on it — and is included in
	// Key. Always false outside fault-injected runs, so the nil-fault key
	// encoding is unchanged.
	Crashed bool
	// Aux is algorithm-specific scratch state (for example the ticket held by
	// a philosopher in the ticket-box baseline). Included in Key.
	Aux [2]int64
}

// ForkState is the per-fork protocol state. The request-list and guest-book
// entries of the fork live in the World's flat req/used arrays at the fork's
// slot offsets (see graph.Topology.SlotBase); use World.ForkReq and
// World.ForkUsed to view them.
type ForkState struct {
	// Holder is the philosopher currently holding the fork, or graph.NoPhil.
	Holder graph.PhilID
	// NR is the fork's number field used by GDP1/GDP2 (0 initially).
	NR int
}

// Pending-grant slot encoding (delayed-grants fault model). Each adjacency
// slot holds one byte: the in-flight bit plus a remaining-delay counter. A
// zero byte means no grant is in flight on the slot.
const (
	// pendingInFlight marks a slot carrying an in-flight grant. It is set for
	// the whole flight, so a slot byte is non-zero exactly while a grant is in
	// flight (the key encoding relies on this).
	pendingInFlight = 0x80
	// pendingDelayMask extracts the remaining-delay counter.
	pendingDelayMask = 0x3f
	// MaxGrantDelay is the largest representable remaining-delay counter of
	// an in-flight grant (the k of delayed-grants:p,k).
	MaxGrantDelay = pendingDelayMask
)

// pendingGrants holds the in-flight grant bytes, one per adjacency slot.
type pendingGrants struct{ slots []uint8 }

// World is the complete state of a generalized dining-philosopher system
// together with run-time bookkeeping (metrics and the event recorder), which
// is excluded from Clone-equality and Key.
type World struct {
	Topo  *graph.Topology
	Phils []PhilState
	Forks []ForkState
	// req and used are the flat per-(fork, adjacent philosopher) request-list
	// and guest-book arrays, indexed by Topo.SlotBase(f)+Topo.Slot(f, p).
	req  []bool
	used []int64
	// Globals is shared auxiliary state used only by the non-distributed
	// baseline algorithms (central monitor, ticket box). Empty for the
	// symmetric fully distributed algorithms.
	Globals []int64
	// pending is the flat per-(fork, adjacent philosopher) in-flight grant
	// array of the delayed-grants fault model, indexed like req/used, or nil
	// when no fault model ever put a grant in flight. It sits behind a
	// pointer so a fault-free World carries only a nil word (keeping World in
	// its heap size class, which the allocation pins depend on), and its
	// all-zero state is observably identical to nil (see AppendKey).
	pending *pendingGrants
	// Step counts atomic actions executed so far.
	Step int64
	// Hunger decides when thinking philosophers become hungry (the workload).
	// It is policy, not protocol state, and is excluded from Key.
	Hunger HungerModel

	// Metrics (not part of Key). On protocol-only worlds (CloneProtocol) the
	// metric slices are nil and the mutation helpers skip metric updates;
	// metric-reading hunger models (NeverHungryAgainAfter) must not be used
	// with such worlds.

	// TotalEats is the number of completed meals.
	TotalEats int64
	// EatsBy[p] is the number of completed meals of philosopher p.
	EatsBy []int64
	// FirstEatStep is the step at which the first meal started, or -1.
	FirstEatStep int64
	// FirstEatBy[p] is the step at which philosopher p first started eating,
	// or -1.
	FirstEatBy []int64
	// HungrySince[p] is the step at which philosopher p last became hungry,
	// or -1 if it is not currently hungry.
	HungrySince []int64
	// TotalWait accumulates, over completed meals, the number of steps between
	// becoming hungry and starting to eat.
	TotalWait int64
	// ScheduledCount[p] counts how many times p was scheduled.
	ScheduledCount []int64
	// LastScheduled[p] is the step at which p was last scheduled, or -1.
	// Adversaries use it to spread their harmless "idle" scheduling evenly so
	// that fairness pressure never builds up behind their back.
	LastScheduled []int64

	rec Recorder
}

// NewWorld returns a World in the initial state required by the paper's
// symmetry condition: every philosopher thinking with program counter 1 and no
// selection, every fork free with nr = 0, empty request lists and guest books.
func NewWorld(topo *graph.Topology) *World {
	n := topo.NumPhilosophers()
	k := topo.NumForks()
	w := &World{
		Topo:         topo,
		Phils:        make([]PhilState, n),
		Forks:        make([]ForkState, k),
		req:          make([]bool, topo.TotalSlots()),
		used:         make([]int64, topo.TotalSlots()),
		Step:         0,
		Hunger:       AlwaysHungry{},
		FirstEatStep: -1,
	}
	for p := range w.Phils {
		w.Phils[p] = PhilState{PC: 1, Phase: Thinking, First: graph.NoFork}
	}
	for f := range w.Forks {
		w.Forks[f] = ForkState{Holder: graph.NoPhil, NR: 0}
	}
	for i := range w.used {
		w.used[i] = -1
	}
	w.EnsureMetrics()
	return w
}

// EnsureMetrics allocates the metric slices if the world is a protocol-only
// clone, so that it can be handed to the run engine. It is a no-op on worlds
// that already carry metrics.
func (w *World) EnsureMetrics() {
	if w.EatsBy != nil {
		return
	}
	n := len(w.Phils)
	w.EatsBy = make([]int64, n)
	w.FirstEatBy = make([]int64, n)
	w.HungrySince = make([]int64, n)
	w.ScheduledCount = make([]int64, n)
	w.LastScheduled = make([]int64, n)
	for p := 0; p < n; p++ {
		w.FirstEatBy[p] = -1
		w.HungrySince[p] = -1
		w.LastScheduled[p] = -1
	}
}

// ResetMetrics zeroes the run metrics in place, so a recycled world (see
// CloneProtocolInto) starts its next run with the bookkeeping of a freshly
// built one. On a protocol-only world it allocates the metric slices like
// EnsureMetrics.
func (w *World) ResetMetrics() {
	w.TotalEats = 0
	w.FirstEatStep = -1
	w.TotalWait = 0
	if w.EatsBy == nil {
		w.EnsureMetrics()
		return
	}
	for p := range w.EatsBy {
		w.EatsBy[p] = 0
		w.FirstEatBy[p] = -1
		w.HungrySince[p] = -1
		w.ScheduledCount[p] = 0
		w.LastScheduled[p] = -1
	}
}

// EnsurePending allocates the pending-grant array if the world does not have
// one yet. The delayed-grants fault model calls it from Init when its rate is
// positive; fault-free worlds never allocate the array, keeping their clones
// and keys untouched.
func (w *World) EnsurePending() {
	if w.pending == nil {
		w.pending = &pendingGrants{slots: make([]uint8, w.Topo.TotalSlots())}
	}
}

// ForkReq returns the request-list entries of fork f, indexed by adjacency
// slot (graph.Topology.Slot). The returned slice aliases the world's state.
func (w *World) ForkReq(f graph.ForkID) []bool {
	base := w.Topo.SlotBase(f)
	return w.req[base : base+w.Topo.Degree(f)]
}

// ForkUsed returns the guest-book entries of fork f, indexed by adjacency
// slot: the step of each philosopher's last signature, or -1. The returned
// slice aliases the world's state.
func (w *World) ForkUsed(f graph.ForkID) []int64 {
	base := w.Topo.SlotBase(f)
	return w.used[base : base+w.Topo.Degree(f)]
}

// SetRecorder installs an event recorder (may be nil to disable recording).
func (w *World) SetRecorder(r Recorder) { w.rec = r }

// Recorder returns the installed event recorder, or nil.
func (w *World) Recorder() Recorder { return w.rec }

// Clone returns a deep copy of the world sharing only the immutable topology
// and dropping the event recorder.
func (w *World) Clone() *World {
	c := &World{
		Topo:         w.Topo,
		Phils:        append([]PhilState(nil), w.Phils...),
		Forks:        append([]ForkState(nil), w.Forks...),
		req:          append([]bool(nil), w.req...),
		used:         append([]int64(nil), w.used...),
		Globals:      append([]int64(nil), w.Globals...),
		Step:         w.Step,
		Hunger:       w.Hunger,
		TotalEats:    w.TotalEats,
		FirstEatStep: w.FirstEatStep,
		TotalWait:    w.TotalWait,
	}
	if w.pending != nil {
		c.pending = &pendingGrants{slots: append([]uint8(nil), w.pending.slots...)}
	}
	if w.EatsBy != nil {
		c.EatsBy = append([]int64(nil), w.EatsBy...)
		c.FirstEatBy = append([]int64(nil), w.FirstEatBy...)
		c.HungrySince = append([]int64(nil), w.HungrySince...)
		c.ScheduledCount = append([]int64(nil), w.ScheduledCount...)
		c.LastScheduled = append([]int64(nil), w.LastScheduled...)
	}
	return c
}

// CloneProtocol returns a copy of the protocol state only: the metric slices
// of the copy are nil (mutation helpers skip them) and the recorder is
// dropped. It is what the model checker clones per explored transition.
func (w *World) CloneProtocol() *World {
	return w.CloneProtocolInto(nil)
}

// CloneProtocolInto is CloneProtocol reusing dst's backing slices when dst is
// a world of the same topology (as produced by a previous CloneProtocol).
// Passing nil allocates a fresh copy. It returns the clone, which is dst
// whenever dst was usable.
func (w *World) CloneProtocolInto(dst *World) *World {
	if dst == nil || dst.Topo != w.Topo {
		c := &World{
			Topo:    w.Topo,
			Phils:   append([]PhilState(nil), w.Phils...),
			Forks:   append([]ForkState(nil), w.Forks...),
			req:     append([]bool(nil), w.req...),
			used:    append([]int64(nil), w.used...),
			Globals: append([]int64(nil), w.Globals...),
			Step:    w.Step,
			Hunger:  w.Hunger,
		}
		if w.pending != nil {
			c.pending = &pendingGrants{slots: append([]uint8(nil), w.pending.slots...)}
		}
		return c
	}
	copy(dst.Phils, w.Phils)
	copy(dst.Forks, w.Forks)
	copy(dst.req, w.req)
	copy(dst.used, w.used)
	dst.Globals = append(dst.Globals[:0], w.Globals...)
	switch {
	case w.pending == nil:
		dst.pending = nil
	case dst.pending != nil:
		copy(dst.pending.slots, w.pending.slots)
	default:
		dst.pending = &pendingGrants{slots: append([]uint8(nil), w.pending.slots...)}
	}
	dst.Step = w.Step
	dst.Hunger = w.Hunger
	return dst
}

// Key returns the canonical encoding of the protocol-relevant state as a
// string. Two worlds with equal keys are indistinguishable to every
// philosopher program. Key allocates; hot paths should use AppendKey with a
// reused scratch buffer.
func (w *World) Key() string {
	return string(w.AppendKey(nil))
}

// AppendKey appends the canonical binary encoding of the protocol-relevant
// state (see the package comment for the format) to buf and returns the
// extended buffer. It performs no allocations beyond growing buf, so a caller
// that reuses the buffer across calls encodes keys allocation-free in steady
// state.
func (w *World) AppendKey(buf []byte) []byte {
	for i := range w.Phils {
		p := &w.Phils[i]
		flags := byte(p.Phase) & 0x3
		if p.HasFirst {
			flags |= 1 << 2
		}
		if p.HasSecond {
			flags |= 1 << 3
		}
		if p.Crashed {
			flags |= 1 << 4
		}
		buf = append(buf, p.PC, flags)
		buf = appendUvarint(buf, uint64(p.First+1))
		buf = appendVarint(buf, p.Aux[0])
		buf = appendVarint(buf, p.Aux[1])
	}
	for i := range w.Forks {
		f := &w.Forks[i]
		buf = appendUvarint(buf, uint64(f.Holder+1))
		buf = appendUvarint(buf, uint64(f.NR))
		base := w.Topo.SlotBase(graph.ForkID(i))
		deg := w.Topo.Degree(graph.ForkID(i))
		var bits, nbits byte
		for s := 0; s < deg; s++ {
			if w.req[base+s] {
				bits |= 1 << nbits
			}
			if nbits++; nbits == 8 {
				buf = append(buf, bits)
				bits, nbits = 0, 0
			}
		}
		if nbits > 0 {
			buf = append(buf, bits)
		}
		buf = appendGuestBookRanks(buf, w.used[base:base+deg])
	}
	buf = appendUvarint(buf, uint64(len(w.Globals)))
	for _, g := range w.Globals {
		buf = appendVarint(buf, g)
	}
	if w.pending != nil {
		for s, v := range w.pending.slots {
			if v != 0 {
				buf = appendUvarint(buf, uint64(s+1))
				buf = append(buf, v)
			}
		}
	}
	return buf
}

// appendUvarint appends v in unsigned LEB128.
func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// appendVarint appends v in zigzag LEB128.
func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// appendGuestBookRanks appends, per adjacency slot, one byte holding the rank
// of the slot's guest-book entry plus one (0 encodes "never signed"). The
// rank of an entry is the number of distinct smaller non-negative entries in
// used, so two guest books with the same relative signing order encode
// identically — only comparisons between entries of the same fork are
// observable (World.Cond), and rank normalization keeps the state space
// finite for model checking. Fork degrees are tiny in every topology of the
// paper, so the quadratic scan beats sorting and allocates nothing.
func appendGuestBookRanks(buf []byte, used []int64) []byte {
	for _, ui := range used {
		if ui < 0 {
			buf = append(buf, 0)
			continue
		}
		rank := 0
		for j, uj := range used {
			if uj < 0 || uj >= ui {
				continue
			}
			// Count each distinct smaller value once (first occurrence only).
			first := true
			for k := 0; k < j; k++ {
				if used[k] == uj {
					first = false
					break
				}
			}
			if first {
				rank++
			}
		}
		buf = append(buf, byte(rank+1))
	}
	return buf
}

// --- Generic state queries used by schedulers, adversaries and detectors ---

// IsFree reports whether fork f is not held by any philosopher and not
// reserved by an in-flight grant (delayed-grants fault model): a reserved
// fork is committed to its holder-to-be, so every observer — including the
// algorithms' own courtesy guards — sees it as busy until the grant is
// delivered and the reservee takes it.
func (w *World) IsFree(f graph.ForkID) bool {
	return w.Forks[f].Holder == graph.NoPhil && (w.pending == nil || !w.forkReserved(f))
}

// HolderOf returns the philosopher holding fork f, or graph.NoPhil.
func (w *World) HolderOf(f graph.ForkID) graph.PhilID { return w.Forks[f].Holder }

// PhaseOf returns the phase of philosopher p.
func (w *World) PhaseOf(p graph.PhilID) Phase { return w.Phils[p].Phase }

// IsHungry reports whether philosopher p is in the trying section.
func (w *World) IsHungry(p graph.PhilID) bool { return w.Phils[p].Phase == Hungry }

// IsEating reports whether philosopher p is eating.
func (w *World) IsEating(p graph.PhilID) bool { return w.Phils[p].Phase == Eating }

// AnyEating reports whether some philosopher is eating.
func (w *World) AnyEating() bool {
	for p := range w.Phils {
		if w.Phils[p].Phase == Eating {
			return true
		}
	}
	return false
}

// AnyHungry reports whether some philosopher is in the trying section.
func (w *World) AnyHungry() bool {
	for p := range w.Phils {
		if w.Phils[p].Phase == Hungry {
			return true
		}
	}
	return false
}

// FirstForkOf returns the fork currently selected as first fork by p, or
// graph.NoFork.
func (w *World) FirstForkOf(p graph.PhilID) graph.ForkID { return w.Phils[p].First }

// SecondForkOf returns the fork opposite to p's current selection, or
// graph.NoFork if p has no selection.
func (w *World) SecondForkOf(p graph.PhilID) graph.ForkID {
	first := w.Phils[p].First
	if first == graph.NoFork {
		return graph.NoFork
	}
	return w.Topo.OtherFork(p, first)
}

// HoldsOnlyFirst reports whether p holds exactly its first fork.
func (w *World) HoldsOnlyFirst(p graph.PhilID) bool {
	return w.Phils[p].HasFirst && !w.Phils[p].HasSecond
}

// IsCommitted reports whether p has selected a first fork it does not yet
// hold — the "empty arrow" of the paper's figures.
func (w *World) IsCommitted(p graph.PhilID) bool {
	st := &w.Phils[p]
	return st.Phase == Hungry && st.First != graph.NoFork && !st.HasFirst
}

// CouldEatNext reports whether p holds its first fork and its second fork is
// currently free: scheduling p repeatedly from such a state leads to eating
// (used by livelock adversaries as the "dangerous" predicate).
func (w *World) CouldEatNext(p graph.PhilID) bool {
	if !w.HoldsOnlyFirst(p) {
		return false
	}
	second := w.SecondForkOf(p)
	return second != graph.NoFork && w.IsFree(second)
}

// HeldForks returns the forks currently held by p (0, 1 or 2 forks).
func (w *World) HeldForks(p graph.PhilID) []graph.ForkID {
	st := &w.Phils[p]
	var out []graph.ForkID
	if st.HasFirst {
		out = append(out, st.First)
	}
	if st.HasSecond {
		out = append(out, w.Topo.OtherFork(p, st.First))
	}
	return out
}

// NumHungry returns the number of philosophers in the trying section.
func (w *World) NumHungry() int {
	n := 0
	for p := range w.Phils {
		if w.Phils[p].Phase == Hungry {
			n++
		}
	}
	return n
}

// CheckInvariants verifies the structural invariants that every algorithm must
// preserve: fork holders hold adjacent forks, holder bookkeeping matches
// philosopher bookkeeping, a fork has at most one holder, and eating
// philosophers hold both forks. It returns a descriptive error on violation.
// It is used by tests and by the engine in debug mode.
func (w *World) CheckInvariants() error {
	holderSeen := make(map[graph.ForkID]graph.PhilID)
	for f := range w.Forks {
		h := w.Forks[f].Holder
		if h == graph.NoPhil {
			continue
		}
		if int(h) < 0 || int(h) >= len(w.Phils) {
			return fmt.Errorf("sim: fork %d held by out-of-range philosopher %d", f, h)
		}
		adjacent := false
		for _, fk := range w.Topo.Forks(h) {
			if fk == graph.ForkID(f) {
				adjacent = true
			}
		}
		if !adjacent {
			return fmt.Errorf("sim: fork %d held by non-adjacent philosopher %d", f, h)
		}
		holderSeen[graph.ForkID(f)] = h
	}
	for p := range w.Phils {
		st := &w.Phils[p]
		if st.HasSecond && !st.HasFirst {
			return fmt.Errorf("sim: philosopher %d holds second fork without first", p)
		}
		if st.HasFirst {
			if st.First == graph.NoFork {
				return fmt.Errorf("sim: philosopher %d marked holding first fork but has no selection", p)
			}
			if w.Forks[st.First].Holder != graph.PhilID(p) {
				return fmt.Errorf("sim: philosopher %d claims fork %d but fork holder is %d", p, st.First, w.Forks[st.First].Holder)
			}
		}
		if st.HasSecond {
			second := w.Topo.OtherFork(graph.PhilID(p), st.First)
			if w.Forks[second].Holder != graph.PhilID(p) {
				return fmt.Errorf("sim: philosopher %d claims second fork %d but fork holder is %d", p, second, w.Forks[second].Holder)
			}
		}
		if st.Phase == Eating && !(st.HasFirst && st.HasSecond) {
			return fmt.Errorf("sim: philosopher %d eating without both forks", p)
		}
		if st.Crashed && (st.HasFirst || st.HasSecond || st.Phase != Thinking || st.First != graph.NoFork) {
			return fmt.Errorf("sim: crashed philosopher %d still participates in the protocol (%+v)", p, st)
		}
	}
	if w.pending != nil {
		if len(w.pending.slots) != w.Topo.TotalSlots() {
			return fmt.Errorf("sim: pending-grant array has %d slots, topology has %d", len(w.pending.slots), w.Topo.TotalSlots())
		}
		for p := range w.Phils {
			inFlight := 0
			for _, f := range w.Topo.Forks(graph.PhilID(p)) {
				v := w.pending.slots[w.slotIndex(f, graph.PhilID(p))]
				if v == 0 {
					continue
				}
				if v&pendingInFlight == 0 {
					return fmt.Errorf("sim: pending slot of fork %d / philosopher %d is %#x without the in-flight bit", f, p, v)
				}
				inFlight++
				if h := w.Forks[f].Holder; h != graph.NoPhil {
					return fmt.Errorf("sim: fork %d has a grant in flight to philosopher %d but is held by %d", f, p, h)
				}
				if w.Phils[p].Phase != Hungry {
					return fmt.Errorf("sim: grant in flight to philosopher %d, which is %s rather than hungry", p, w.Phils[p].Phase)
				}
			}
			if inFlight > 1 {
				return fmt.Errorf("sim: philosopher %d has %d grants in flight; the delay model stalls a philosopher with one", p, inFlight)
			}
		}
	}
	// Every held fork's holder must acknowledge holding it.
	//dplint:ok maporder error path: any one violation's error suffices, and a valid world returns nil either way
	for f, h := range holderSeen {
		st := &w.Phils[h]
		owns := (st.HasFirst && st.First == f) ||
			(st.HasSecond && st.First != graph.NoFork && w.Topo.OtherFork(h, st.First) == f)
		if !owns {
			return fmt.Errorf("sim: fork %d lists holder %d but philosopher does not acknowledge it", f, h)
		}
	}
	return nil
}

// String renders a compact single-line description of the state, mainly for
// test failure messages. For full diagrams use package trace.
func (w *World) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d |", w.Step)
	for p := range w.Phils {
		st := &w.Phils[p]
		phase := st.Phase.String()
		if st.Crashed {
			phase = "crashed"
		}
		fmt.Fprintf(&b, " P%d[%s pc%d", p, phase, st.PC)
		if st.First != graph.NoFork {
			fmt.Fprintf(&b, " f%d", st.First)
			if st.HasFirst {
				b.WriteString("*")
			}
			if st.HasSecond {
				b.WriteString("*")
			}
		}
		if f, delay, ok := w.PendingGrant(graph.PhilID(p)); ok {
			fmt.Fprintf(&b, " g%d~%d", f, delay)
		}
		b.WriteString("]")
	}
	b.WriteString(" |")
	for f := range w.Forks {
		fs := &w.Forks[f]
		fmt.Fprintf(&b, " f%d(nr%d", f, fs.NR)
		if fs.Holder != graph.NoPhil {
			fmt.Fprintf(&b, " P%d", fs.Holder)
		}
		b.WriteString(")")
	}
	return b.String()
}

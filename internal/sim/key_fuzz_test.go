package sim_test

// Fuzz harness for the canonical binary state encoding (World.AppendKey),
// which the model checker's sharded intern tables rely on for both
// deduplication and shard placement. The property under test is exactly the
// injectivity contract of the sim package comment: two worlds encode to the
// same key if and only if their observable protocol states are equal —
// identical worlds always collide, worlds differing in any
// philosopher-visible field never do. "Observable" matters for the guest
// books: only the relative signing order of a fork's guest-book entries can
// be read by a program (World.Cond), so the encoder rank-normalizes them,
// and the structural comparison here does too — with an independent
// sort-based rank computation, cross-checking the encoder's quadratic scan.
//
// The fuzzer drives two scripted runs of a real algorithm from the initial
// state (each input byte schedules a philosopher and picks an outcome), so
// every reachable combination of phases, fork selections, request lists,
// guest books, nr fields, aux registers and globals can arise.

import (
	"bytes"
	"slices"
	"testing"

	"repro/internal/algo"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/sim"
)

// fuzzAlgorithms cover every state feature the key encodes: free choice and
// aux-free states (LR1), request lists + guest books (LR2), nr draws (GDP1,
// GDP2) and shared globals + aux registers (ticket-box).
var fuzzAlgorithms = []string{"LR1", "LR2", "GDP1", "GDP2", "ticket-box"}

// fuzzFaults optionally wraps the algorithm in a fault model (high nibble of
// the pick byte), so the crashed bit of the flags byte and the pending-grant
// key suffix get exercised too: injectivity must keep holding when crash,
// rejoin, grant-lost and in-flight-grant outcomes appear in the transition
// system. The empty entry keeps the original fault-free corpus behaviour for
// picks with a zero high nibble.
var fuzzFaults = []string{"", "crash-rejoin:0.25,0.5", "freeze:0.25", "lossy-grants:0.5", "delayed-grants:0.5,2"}

// runScript executes one scripted run: byte i schedules philosopher
// b%numPhils and resolves its action to outcome (b>>4)%len(outcomes).
func runScript(t *testing.T, topo *graph.Topology, prog sim.Program, script []byte) *sim.World {
	t.Helper()
	w := sim.NewWorld(topo)
	prog.Init(w)
	n := topo.NumPhilosophers()
	var buf []sim.Outcome
	for _, b := range script {
		p := graph.PhilID(int(b) % n)
		buf = prog.Outcomes(w, p, buf[:0])
		if len(buf) == 0 {
			continue
		}
		o := &buf[int(b>>4)%len(buf)]
		o.Do(w, p)
		w.Step++
	}
	return w
}

// guestRanks rank-normalizes one fork's guest book with an independent
// algorithm (sort + dedup of the distinct signing steps) so the comparison
// does not share code with the encoder it checks: -1 for "never signed",
// otherwise the entry's rank among the fork's distinct signing steps.
func guestRanks(used []int64) []int {
	var distinct []int64
	for _, u := range used {
		if u >= 0 {
			distinct = append(distinct, u)
		}
	}
	slices.Sort(distinct)
	distinct = slices.Compact(distinct)
	out := make([]int, len(used))
	for i, u := range used {
		if u < 0 {
			out[i] = -1
			continue
		}
		out[i], _ = slices.BinarySearch(distinct, u)
	}
	return out
}

// observablyEqual compares every protocol field a philosopher program can
// read: philosopher states, fork holders and nr values, request lists,
// rank-normalized guest books, in-flight fork grants (a nil pending array is
// observably all-zero, matching the key's suffix convention) and the shared
// globals. Run metrics and the step counter are excluded, exactly as they
// are from the key.
func observablyEqual(a, b *sim.World) bool {
	if !slices.Equal(a.Phils, b.Phils) || !slices.Equal(a.Forks, b.Forks) {
		return false
	}
	for f := 0; f < a.Topo.NumForks(); f++ {
		fid := graph.ForkID(f)
		if !slices.Equal(a.ForkReq(fid), b.ForkReq(fid)) {
			return false
		}
		if !slices.Equal(guestRanks(a.ForkUsed(fid)), guestRanks(b.ForkUsed(fid))) {
			return false
		}
	}
	for p := 0; p < a.Topo.NumPhilosophers(); p++ {
		pid := graph.PhilID(p)
		fa, da, oka := a.PendingGrant(pid)
		fb, db, okb := b.PendingGrant(pid)
		if oka != okb || fa != fb || da != db {
			return false
		}
	}
	return slices.Equal(a.Globals, b.Globals)
}

func FuzzWorldAppendKey(f *testing.F) {
	f.Add([]byte{}, []byte{}, byte(0))
	f.Add([]byte{0, 1, 2}, []byte{0, 1, 2}, byte(1))
	f.Add([]byte{0, 0, 16, 32, 1, 1, 17}, []byte{2, 2, 18, 34}, byte(2))
	f.Add([]byte{5, 21, 37, 53, 69, 85}, []byte{3, 19, 35, 51}, byte(3))
	f.Add(bytes.Repeat([]byte{0, 1, 2, 17, 33}, 20), bytes.Repeat([]byte{2, 1, 0}, 25), byte(4))
	// Fault-wrapped seeds: high nibble selects the fault model, so crash,
	// rejoin and grant-lost transitions reach the encoder from the corpus.
	f.Add([]byte{0, 1, 2, 17, 33, 49}, []byte{0, 1, 2}, byte(0x10))
	f.Add([]byte{5, 21, 37, 53, 69, 85}, []byte{3, 19, 35, 51}, byte(0x21))
	f.Add(bytes.Repeat([]byte{0, 16, 32, 48}, 15), bytes.Repeat([]byte{1, 17, 33}, 20), byte(0x33))
	// Delayed-grants seeds: flight branches put grants in flight, so the
	// pending-grant key suffix (and its nil ≡ all-zero convention) is hit.
	f.Add([]byte{0, 16, 16, 16, 1, 17, 17}, []byte{0, 16, 32, 48, 16}, byte(0x40))
	f.Add(bytes.Repeat([]byte{0, 16, 1, 17, 2, 18}, 12), bytes.Repeat([]byte{16, 17, 18}, 16), byte(0x42))
	f.Fuzz(func(t *testing.T, scriptA, scriptB []byte, algPick byte) {
		topo := graph.Theorem2Minimal()
		prog, err := algo.New(fuzzAlgorithms[int(algPick&0x0f)%len(fuzzAlgorithms)], algo.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if spec := fuzzFaults[int(algPick>>4)%len(fuzzFaults)]; spec != "" {
			m, err := fault.NewFromSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(topo); err != nil {
				t.Fatal(err)
			}
			prog = m.Wrap(topo, prog)
		}
		wa := runScript(t, topo, prog, scriptA)
		wb := runScript(t, topo, prog, scriptB)

		keyA := string(wa.AppendKey(nil))
		keyB := string(wb.AppendKey(nil))

		// Determinism: re-encoding the same world and re-running the same
		// script must reproduce the key byte for byte.
		if again := string(wa.AppendKey(nil)); again != keyA {
			t.Fatalf("%s: AppendKey is not deterministic on one world", prog.Name())
		}
		if replay := string(runScript(t, topo, prog, scriptA).AppendKey(nil)); replay != keyA {
			t.Fatalf("%s: the same script produced different keys across runs", prog.Name())
		}

		// Injectivity on observable protocol state, both directions: equal
		// keys must mean observably equal worlds (a collision here would
		// silently merge distinct states in the model checker) and
		// observably equal worlds must collide (or revisited states would
		// never deduplicate and the exploration would diverge).
		if eq := observablyEqual(wa, wb); (keyA == keyB) != eq {
			t.Errorf("%s: key equality %v but observable equality %v\nworld A: %v\nworld B: %v",
				prog.Name(), keyA == keyB, eq, wa, wb)
		}
	})
}

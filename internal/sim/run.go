package sim

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Scheduler is the paper's adversary: it observes the complete state of the
// system (it "has complete information of the past of the computation") and
// decides which philosopher executes the next atomic action. Fairness —
// every philosopher scheduled infinitely often — is a property of the
// scheduler, checked externally by the fairness monitor in package sched.
type Scheduler interface {
	// Name returns the scheduler's name for reports.
	Name() string
	// Next returns the philosopher to schedule in world w. It must return a
	// valid philosopher ID.
	Next(w *World) graph.PhilID
}

// ResettableScheduler is implemented by schedulers that can return to their
// just-constructed state in place. Trial harnesses that recycle per-worker
// scheduler instances (package verify's trial pool) call Reset between
// trials instead of constructing a fresh scheduler; after Reset the
// scheduler's decisions must be identical to those of a newly constructed
// instance with the same configuration. Schedulers driven by a *prng.Source
// keep the pointer across Reset — the harness reseeds the source in place.
type ResettableScheduler interface {
	Scheduler
	// Reset restores the scheduler to its initial state.
	Reset()
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc struct {
	SchedulerName string
	NextFunc      func(w *World) graph.PhilID
}

// Name implements Scheduler.
func (s SchedulerFunc) Name() string { return s.SchedulerName }

// Next implements Scheduler.
func (s SchedulerFunc) Next(w *World) graph.PhilID { return s.NextFunc(w) }

// RunOptions configures a run of the step engine.
type RunOptions struct {
	// MaxSteps bounds the number of atomic actions; 0 means the package
	// default (DefaultMaxSteps).
	MaxSteps int64
	// StopAfterTotalEats stops the run once this many meals have completed
	// (0 = no such stop).
	StopAfterTotalEats int64
	// StopWhenAllHaveEaten stops the run once every philosopher has eaten at
	// least once.
	StopWhenAllHaveEaten bool
	// StopWhenPhilEats stops the run once the philosopher StopPhil has eaten.
	// It is a separate flag so that the zero value of RunOptions does not
	// accidentally watch philosopher 0.
	StopWhenPhilEats bool
	// StopPhil is the philosopher watched by StopWhenPhilEats.
	StopPhil graph.PhilID
	// Stop is polled every StopCheckInterval steps when non-nil; a true
	// return ends the run with reason StopCancelled. It is how context
	// cancellation reaches the step loop without threading a Context (and a
	// per-step branch) through the hot path.
	Stop func() bool
	// Hunger overrides the default AlwaysHungry workload when non-nil.
	Hunger HungerModel
	// Recorder receives every event when non-nil.
	Recorder Recorder
	// CheckInvariants makes the engine verify World.CheckInvariants after
	// every step; intended for tests (it is O(n+k) per step).
	CheckInvariants bool
	// ValidateOutcomes makes the engine verify every outcome set before
	// sampling; intended for tests.
	ValidateOutcomes bool
}

// DefaultMaxSteps is the step bound used when RunOptions.MaxSteps is zero.
const DefaultMaxSteps = 1_000_000

// StopReason describes why a run ended.
type StopReason string

const (
	// StopMaxSteps means the step bound was reached.
	StopMaxSteps StopReason = "max-steps"
	// StopTotalEats means the requested number of meals completed.
	StopTotalEats StopReason = "total-eats"
	// StopAllAte means every philosopher ate at least once.
	StopAllAte StopReason = "all-ate"
	// StopPhilAte means the watched philosopher ate.
	StopPhilAte StopReason = "phil-ate"
	// StopCancelled means RunOptions.Stop fired (typically a cancelled
	// context).
	StopCancelled StopReason = "cancelled"
)

// StopCheckInterval is how often (in steps) RunOptions.Stop is polled.
const StopCheckInterval = 1024

// Result summarises a run.
type Result struct {
	// Algorithm, SchedulerName and Topology identify the configuration.
	Algorithm     string
	SchedulerName string
	Topology      string

	// Steps is the number of atomic actions executed.
	Steps int64
	// TotalEats is the number of completed meals.
	TotalEats int64
	// EatsBy[p] is the number of completed meals of philosopher p.
	EatsBy []int64
	// FirstEatStep is the step of the first meal, or -1 if nobody ate.
	FirstEatStep int64
	// FirstEatBy[p] is the step at which p first started eating, or -1.
	FirstEatBy []int64
	// MeanWaitSteps is the mean number of steps between becoming hungry and
	// starting to eat, over started meals (0 when nobody ate).
	MeanWaitSteps float64
	// ScheduledCount[p] is how many times p was scheduled.
	ScheduledCount []int64
	// MaxScheduleGap is the largest observed gap (in steps) between
	// consecutive schedulings of the same philosopher — a fairness witness.
	MaxScheduleGap int64
	// Starved lists philosophers that became hungry during the run and never
	// ate.
	Starved []graph.PhilID
	// Reason states why the run stopped.
	Reason StopReason
	// Final is the final world (for inspection by tests and adversaries).
	Final *World

	// lastSched and everHungry are the per-run gap/starvation scratch arrays,
	// and obuf the step loop's outcome scratch buffer, kept on the Result so
	// that RunWorldInto reuses them together with the metric slices (the
	// buffer otherwise regrows to the program's largest outcome set — m
	// entries for GDP's uniform draw — on every recycled trial).
	lastSched  []int64
	everHungry []bool
	obuf       []Outcome
}

// Progress reports whether at least one meal completed.
func (r *Result) Progress() bool { return r.TotalEats > 0 }

// LockoutFree reports whether every philosopher that was ever hungry ate at
// least once during the run.
func (r *Result) LockoutFree() bool { return len(r.Starved) == 0 }

// Run executes the step engine: repeatedly asks the scheduler for a
// philosopher, asks the program for that philosopher's possible next actions,
// samples one according to its probability and applies it, until a stop
// condition holds.
func Run(topo *graph.Topology, prog Program, sched Scheduler, rng *prng.Source, opts RunOptions) (*Result, error) {
	if topo == nil || prog == nil || sched == nil || rng == nil {
		return nil, errors.New("sim: Run requires topology, program, scheduler and rng")
	}
	w := NewWorld(topo)
	if opts.Hunger != nil {
		w.Hunger = opts.Hunger
	}
	w.SetRecorder(opts.Recorder)
	prog.Init(w)
	return RunWorld(w, prog, sched, rng, opts)
}

// RunWorld is like Run but starts from an existing world (which must have been
// initialised for prog). It allows adversaries and tests to resume from
// prepared states.
func RunWorld(w *World, prog Program, sched Scheduler, rng *prng.Source, opts RunOptions) (*Result, error) {
	res := &Result{}
	if err := RunWorldInto(res, w, prog, sched, rng, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// RunWorldInto is RunWorld writing its summary into *res instead of
// allocating one: every field is overwritten and the metric slices (EatsBy,
// FirstEatBy, ScheduledCount, Starved) and per-run scratch arrays are reused
// in place, so a caller that recycles the Result across runs — the
// Monte-Carlo trial loops of internal/verify — aggregates trials without any
// per-trial Result allocations. The reused slices are overwritten by the next
// run; copy them if retained.
func RunWorldInto(res *Result, w *World, prog Program, sched Scheduler, rng *prng.Source, opts RunOptions) error {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	if opts.Hunger != nil {
		w.Hunger = opts.Hunger
	}
	if opts.Recorder != nil {
		w.SetRecorder(opts.Recorder)
	}
	w.EnsureMetrics()

	n := len(w.Phils)
	lastScheduled := res.lastSched[:0]
	everHungry := res.everHungry[:0]
	for i := 0; i < n; i++ {
		lastScheduled = append(lastScheduled, -1)
		everHungry = append(everHungry, false)
	}
	res.lastSched, res.everHungry = lastScheduled, everHungry
	var maxGap int64

	reason := StopMaxSteps
	start := w.Step
	// Scratch outcome buffer reused across steps (and, through the Result,
	// across recycled runs) so that the engine's hot loop allocates nothing
	// in steady state.
	obuf := res.obuf
	for w.Step-start < maxSteps {
		if opts.Stop != nil && (w.Step-start)%StopCheckInterval == 0 && opts.Stop() {
			reason = StopCancelled
			break
		}
		p := sched.Next(w)
		if int(p) < 0 || int(p) >= n {
			return fmt.Errorf("sim: scheduler %q returned invalid philosopher %d", sched.Name(), p)
		}
		w.emit(EventScheduled, p, graph.NoFork, 0)
		if gap := w.Step - lastScheduled[p]; lastScheduled[p] >= 0 && gap > maxGap {
			maxGap = gap
		}
		lastScheduled[p] = w.Step
		w.ScheduledCount[p]++
		w.LastScheduled[p] = w.Step

		outcomes := prog.Outcomes(w, p, obuf[:0])
		obuf = outcomes
		if opts.ValidateOutcomes {
			if err := ValidateOutcomes(outcomes); err != nil {
				return fmt.Errorf("sim: %s outcomes for P%d at step %d: %w", prog.Name(), p, w.Step, err)
			}
		}
		SampleOutcome(outcomes, rng).Do(w, p)
		if w.Phils[p].Phase == Hungry {
			everHungry[p] = true
		}
		w.Step++

		if opts.CheckInvariants {
			if err := w.CheckInvariants(); err != nil {
				return fmt.Errorf("sim: invariant violated after step %d of %s: %w", w.Step, prog.Name(), err)
			}
		}

		if opts.StopAfterTotalEats > 0 && w.TotalEats >= opts.StopAfterTotalEats {
			reason = StopTotalEats
			break
		}
		if opts.StopWhenPhilEats && opts.StopPhil >= 0 &&
			int(opts.StopPhil) < n && w.EatsBy[opts.StopPhil] > 0 {
			reason = StopPhilAte
			break
		}
		if opts.StopWhenAllHaveEaten && allPositive(w.EatsBy) {
			reason = StopAllAte
			break
		}
	}

	res.obuf = obuf[:0]

	// Account for the trailing gap of each philosopher (including philosophers
	// never scheduled at all), so that a scheduler that ignores somebody shows
	// up as unfair.
	for p := 0; p < n; p++ {
		var gap int64
		if lastScheduled[p] < 0 {
			gap = w.Step - start
		} else {
			gap = w.Step - lastScheduled[p]
		}
		if gap > maxGap {
			maxGap = gap
		}
	}

	res.Algorithm = prog.Name()
	res.SchedulerName = sched.Name()
	res.Topology = w.Topo.Name()
	res.Steps = w.Step - start
	res.TotalEats = w.TotalEats
	res.EatsBy = append(res.EatsBy[:0], w.EatsBy...)
	res.FirstEatStep = w.FirstEatStep
	res.FirstEatBy = append(res.FirstEatBy[:0], w.FirstEatBy...)
	res.ScheduledCount = append(res.ScheduledCount[:0], w.ScheduledCount...)
	res.MaxScheduleGap = maxGap
	res.Reason = reason
	res.Final = w
	res.MeanWaitSteps = 0
	if started := countStartedMeals(w); started > 0 {
		res.MeanWaitSteps = float64(w.TotalWait) / float64(started)
	}
	res.Starved = res.Starved[:0]
	for p := 0; p < n; p++ {
		if everHungry[p] && w.EatsBy[p] == 0 && w.FirstEatBy[p] < 0 {
			res.Starved = append(res.Starved, graph.PhilID(p))
		}
	}
	return nil
}

// countStartedMeals returns the number of meals whose waiting time has been
// accumulated into TotalWait (meals that started).
func countStartedMeals(w *World) int64 {
	// A meal's wait is added exactly when it starts; completed meals plus the
	// currently eating philosophers all started.
	started := w.TotalEats
	for p := range w.Phils {
		if w.Phils[p].Phase == Eating {
			started++
		}
	}
	return started
}

func allPositive(xs []int64) bool {
	for _, x := range xs {
		if x <= 0 {
			return false
		}
	}
	return true
}

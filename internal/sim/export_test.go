package sim

import "repro/internal/graph"

// SetPendingForTest writes a raw pending-grant entry (or clears it) without
// GrantInFlight's free-fork precondition. The canonicalizer fuzzer mutates
// worlds without maintaining protocol invariants — canonicalization is a pure
// key transformation — so it needs direct slot access; writing a zero entry
// still materializes the array, exercising the nil ≡ all-zero key convention.
func (w *World) SetPendingForTest(f graph.ForkID, p graph.PhilID, delay uint8, inFlight bool) {
	w.EnsurePending()
	var v uint8
	if inFlight {
		v = pendingInFlight | delay&pendingDelayMask
	}
	w.pending.slots[w.slotIndex(f, p)] = v
}

// PendingAtForTest reads the pending-grant entry of fork f's adjacency slot
// of philosopher p: its remaining-delay counter and whether a grant is in
// flight there. Unlike PendingGrant it addresses a single slot, so test
// harnesses can transport every entry of an arbitrary (invariant-free) world.
func (w *World) PendingAtForTest(f graph.ForkID, p graph.PhilID) (uint8, bool) {
	if w.pending == nil {
		return 0, false
	}
	v := w.pending.slots[w.slotIndex(f, p)]
	return v & pendingDelayMask, v&pendingInFlight != 0
}

package sim

import (
	"testing"

	"repro/internal/graph"
)

func TestNewWorldInitialSymmetry(t *testing.T) {
	t.Parallel()
	topo := graph.Figure1A()
	w := NewWorld(topo)
	// The paper's symmetry condition: all philosophers and all forks start in
	// the same state.
	for p := 1; p < len(w.Phils); p++ {
		if w.Phils[p] != w.Phils[0] {
			t.Errorf("philosopher %d initial state %+v differs from philosopher 0 %+v", p, w.Phils[p], w.Phils[0])
		}
	}
	for f := range w.Forks {
		fs := &w.Forks[f]
		if fs.Holder != graph.NoPhil || fs.NR != 0 {
			t.Errorf("fork %d not in initial state: %+v", f, fs)
		}
		fid := graph.ForkID(f)
		req, used := w.ForkReq(fid), w.ForkUsed(fid)
		for slot := range req {
			if req[slot] || used[slot] != -1 {
				t.Errorf("fork %d slot %d has non-initial request/guest-book state", f, slot)
			}
		}
	}
	if w.AnyHungry() || w.AnyEating() {
		t.Error("fresh world should have no hungry or eating philosophers")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Errorf("fresh world violates invariants: %v", err)
	}
}

func TestTakeReleaseCycle(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := NewWorld(topo)
	p := graph.PhilID(0)
	f := topo.Left(p)

	w.BecomeHungry(p)
	if !w.IsHungry(p) {
		t.Fatal("BecomeHungry did not set phase")
	}
	w.Commit(p, f)
	if !w.IsCommitted(p) {
		t.Fatal("Commit did not register commitment")
	}
	if !w.TryTake(p, f) {
		t.Fatal("TryTake on a free fork failed")
	}
	w.MarkHoldingFirst(p)
	if w.IsFree(f) || w.HolderOf(f) != p {
		t.Error("fork not recorded as held")
	}
	if w.IsCommitted(p) {
		t.Error("philosopher holding its first fork should not be 'committed'")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Errorf("invariants after take: %v", err)
	}

	// Another philosopher sharing f cannot take it.
	q := topo.PhilosophersAt(f)[0]
	if q == p {
		q = topo.PhilosophersAt(f)[1]
	}
	if w.TryTake(q, f) {
		t.Error("TryTake succeeded on a held fork")
	}

	w.Release(p, f)
	if !w.IsFree(f) {
		t.Error("Release did not free the fork")
	}
	if w.Phils[p].HasFirst {
		t.Error("Release did not clear HasFirst")
	}
}

func TestReleasePanicsWhenNotHolder(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := NewWorld(topo)
	defer func() {
		if recover() == nil {
			t.Fatal("Release by a non-holder did not panic")
		}
	}()
	w.Release(0, topo.Left(0))
}

func TestEatingLifecycleMetrics(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := NewWorld(topo)
	p := graph.PhilID(1)
	l, r := topo.Left(p), topo.Right(p)

	w.Step = 10
	w.BecomeHungry(p)
	w.Commit(p, l)
	w.TryTake(p, l)
	w.MarkHoldingFirst(p)
	w.Step = 25
	w.TryTake(p, r)
	w.MarkHoldingSecond(p)
	w.StartEating(p)

	if !w.IsEating(p) || !w.AnyEating() {
		t.Fatal("StartEating did not set phase")
	}
	if w.FirstEatStep != 25 || w.FirstEatBy[p] != 25 {
		t.Errorf("first-eat bookkeeping: global %d personal %d, want 25", w.FirstEatStep, w.FirstEatBy[p])
	}
	if w.TotalWait != 15 {
		t.Errorf("TotalWait = %d, want 15", w.TotalWait)
	}

	w.FinishEating(p)
	if w.TotalEats != 1 || w.EatsBy[p] != 1 {
		t.Errorf("FinishEating counters: total %d, by %d", w.TotalEats, w.EatsBy[p])
	}
	w.ReleaseAll(p)
	w.BackToThinking(p, 1)
	if w.PhaseOf(p) != Thinking || w.Phils[p].First != graph.NoFork {
		t.Error("BackToThinking did not reset state")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Errorf("invariants after full cycle: %v", err)
	}
}

func TestStartEatingPanicsWithoutForks(t *testing.T) {
	t.Parallel()
	w := NewWorld(graph.Ring(3))
	w.BecomeHungry(0)
	defer func() {
		if recover() == nil {
			t.Fatal("StartEating without forks did not panic")
		}
	}()
	w.StartEating(0)
}

func TestCondCourtesySemantics(t *testing.T) {
	t.Parallel()
	// Theta(1,1,1): 2 forks shared by 3 philosophers — a fork with 3 adjacent
	// philosophers exercises the generalized guest book.
	topo := graph.Theorem2Minimal()
	w := NewWorld(topo)
	f := graph.ForkID(0)
	p0, p1, p2 := graph.PhilID(0), graph.PhilID(1), graph.PhilID(2)

	// Initially: nobody requested, nobody used — everyone may take.
	for _, p := range []graph.PhilID{p0, p1, p2} {
		if !w.Cond(p, f) {
			t.Errorf("initial Cond(P%d, f0) = false, want true", p)
		}
	}

	// p1 requests. p0 has never used the fork, p1 has never used it either:
	// p0 may still take it (nobody is "behind" p0).
	w.Request(p1, f)
	if !w.Cond(p0, f) {
		t.Error("Cond(P0) with a fresh competing request should be true")
	}

	// p0 uses the fork (signs the guest book); p1 still requesting and has
	// never used it: now p0 must defer to p1.
	w.Step = 5
	w.SignGuestBook(p0, f)
	if w.Cond(p0, f) {
		t.Error("Cond(P0) should be false: P0 ate more recently than requester P1")
	}
	// p1 itself is fine (its own request doesn't block it, and p0 has no
	// request).
	if !w.Cond(p1, f) {
		t.Error("Cond(P1) should be true")
	}

	// p1 uses the fork later; now both have used it and p1 is the most recent,
	// so p0 may go again, while p1 must defer if p0 requests.
	w.Step = 9
	w.SignGuestBook(p1, f)
	if !w.Cond(p0, f) {
		t.Error("Cond(P0) should be true after P1's later use")
	}
	w.Request(p0, f)
	if w.Cond(p1, f) {
		t.Error("Cond(P1) should be false: P1 used the fork after P0 and P0 is requesting")
	}
	// A third philosopher with no history is not blocked by anyone ahead of
	// it... but it is blocked if others requested and it has used the fork
	// more recently than them; p2 never used it, so it may take.
	if !w.Cond(p2, f) {
		t.Error("Cond(P2) with no usage history should be true")
	}

	// Removing requests unblocks.
	w.Unrequest(p0, f)
	if !w.Cond(p1, f) {
		t.Error("Cond(P1) should be true after P0's request is removed")
	}
	if w.HasRequest(p0, f) || !w.HasRequest(p1, f) {
		t.Error("HasRequest bookkeeping wrong")
	}
}

func TestGuestBookEmpty(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := NewWorld(topo)
	if !w.GuestBookEmpty(0) {
		t.Error("fresh guest book should be empty")
	}
	w.SignGuestBook(0, 0)
	if w.GuestBookEmpty(0) {
		t.Error("guest book with a signature should not be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	topo := graph.Figure1A()
	w := NewWorld(topo)
	w.BecomeHungry(0)
	w.Commit(0, topo.Left(0))
	w.TryTake(0, topo.Left(0))
	w.MarkHoldingFirst(0)
	w.Request(2, topo.Left(2))
	w.SetNR(0, topo.Left(0), 3)

	c := w.Clone()
	if c.Key() != w.Key() {
		t.Fatal("clone has different key than original")
	}

	// Mutate the clone; the original must not change.
	c.Release(0, topo.Left(0))
	c.SetNR(1, topo.Left(0), 7)
	c.Request(4, topo.Left(4))
	if w.IsFree(topo.Left(0)) {
		t.Error("mutating clone released the original's fork")
	}
	if w.NR(topo.Left(0)) != 3 {
		t.Error("mutating clone changed the original's nr")
	}
	if c.Key() == w.Key() {
		t.Error("diverged clone still has equal key")
	}
}

func TestKeyIgnoresStepAndMetrics(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(4)
	a := NewWorld(topo)
	b := NewWorld(topo)
	b.Step = 400
	b.TotalEats = 7
	b.EatsBy[0] = 7
	if a.Key() != b.Key() {
		t.Error("Key should not depend on the step counter or metrics")
	}
}

func TestKeyGuestBookRankNormalization(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	a := NewWorld(topo)
	b := NewWorld(topo)
	// Same relative guest-book order, different absolute timestamps.
	a.Step = 3
	a.SignGuestBook(0, 0)
	a.Step = 9
	a.SignGuestBook(2, 0)
	b.Step = 100
	b.SignGuestBook(0, 0)
	b.Step = 2000
	b.SignGuestBook(2, 0)
	if a.Key() != b.Key() {
		t.Error("keys should agree when guest-book orders agree")
	}
	// Different relative order must give different keys.
	c := NewWorld(topo)
	c.Step = 9
	c.SignGuestBook(2, 0)
	c.Step = 50
	c.SignGuestBook(0, 0)
	if a.Key() == c.Key() {
		t.Error("keys should differ when guest-book orders differ")
	}
}

func TestKeyDistinguishesProtocolState(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	base := NewWorld(topo).Key()

	w1 := NewWorld(topo)
	w1.BecomeHungry(1)
	if w1.Key() == base {
		t.Error("key should reflect phase changes")
	}

	w2 := NewWorld(topo)
	w2.SetNR(0, 1, 2)
	if w2.Key() == base {
		t.Error("key should reflect nr changes")
	}

	w3 := NewWorld(topo)
	w3.Request(0, topo.Left(0))
	if w3.Key() == base {
		t.Error("key should reflect request-list changes")
	}

	w4 := NewWorld(topo)
	w4.SetGlobal(0, 5)
	if w4.Key() == base {
		t.Error("key should reflect globals")
	}
}

func TestCouldEatNextAndHeldForks(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := NewWorld(topo)
	p := graph.PhilID(0)
	if w.CouldEatNext(p) {
		t.Error("thinking philosopher cannot be about to eat")
	}
	w.BecomeHungry(p)
	w.Commit(p, topo.Left(p))
	w.TryTake(p, topo.Left(p))
	w.MarkHoldingFirst(p)
	if !w.CouldEatNext(p) {
		t.Error("philosopher holding first fork with free second fork should be CouldEatNext")
	}
	if got := w.HeldForks(p); len(got) != 1 || got[0] != topo.Left(p) {
		t.Errorf("HeldForks = %v, want [%d]", got, topo.Left(p))
	}
	// Occupy the second fork with the neighbour: no longer dangerous.
	q := graph.PhilID(1)
	w.BecomeHungry(q)
	w.Commit(q, topo.Right(p))
	w.TryTake(q, topo.Right(p))
	w.MarkHoldingFirst(q)
	if w.CouldEatNext(p) {
		t.Error("CouldEatNext should be false when the second fork is held")
	}
	if w.SecondForkOf(p) != topo.Right(p) {
		t.Error("SecondForkOf wrong")
	}
	if w.NumHungry() != 2 {
		t.Errorf("NumHungry = %d, want 2", w.NumHungry())
	}
}

func TestInvariantViolationDetected(t *testing.T) {
	t.Parallel()
	topo := graph.Ring(3)
	w := NewWorld(topo)
	// Corrupt the state: a fork held by a philosopher that does not
	// acknowledge it.
	w.Forks[0].Holder = 2
	if err := w.CheckInvariants(); err == nil {
		t.Error("CheckInvariants accepted a fork held without acknowledgement")
	}

	w2 := NewWorld(topo)
	w2.Phils[0].Phase = Eating
	if err := w2.CheckInvariants(); err == nil {
		t.Error("CheckInvariants accepted an eating philosopher without forks")
	}
}

func TestGlobals(t *testing.T) {
	t.Parallel()
	w := NewWorld(graph.Ring(3))
	if w.Global(2) != 0 {
		t.Error("unset global should read 0")
	}
	w.SetGlobal(2, 42)
	if w.Global(2) != 42 {
		t.Error("SetGlobal/Global round trip failed")
	}
	c := w.Clone()
	c.SetGlobal(2, 7)
	if w.Global(2) != 42 {
		t.Error("clone shares globals with original")
	}
}

func TestPhaseString(t *testing.T) {
	t.Parallel()
	if Thinking.String() != "thinking" || Hungry.String() != "hungry" || Eating.String() != "eating" {
		t.Error("Phase.String values wrong")
	}
}

func TestWorldStringContainsBasics(t *testing.T) {
	t.Parallel()
	w := NewWorld(graph.Ring(2))
	s := w.String()
	if len(s) == 0 {
		t.Error("String() empty")
	}
}

package sim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Outcome is one possible result of the next atomic action of a scheduled
// philosopher. Deterministic actions have a single outcome with probability 1;
// the random draws of the algorithms (random_choice(left, right) and
// random[1, m]) have one outcome per possible result.
//
// Apply mutates a world: it receives the world and philosopher the outcome
// set was computed for plus the outcome's Arg. Keeping Apply a plain function
// of (world, philosopher, arg) — rather than a closure over them — lets
// programs build outcome sets without allocating: the function values are
// static, and the variable part of the action travels in Arg. The model
// checker exploits the same shape to apply an outcome to a *clone* of the
// world it was computed from (the outcome sets of equal protocol states are
// identical, so outcome i of the recomputed set is outcome i of the
// original).
//
// An outcome must be applied at most once, and only to a world whose protocol
// state equals the one it was computed from.
type Outcome struct {
	// Prob is the probability of this outcome. The probabilities of the
	// outcomes returned together must sum to 1 (within rounding).
	Prob float64
	// Label is a short human-readable description ("commit left", "nr:=3").
	Label string
	// Arg carries the outcome-specific datum passed to Apply (a fork ID, a
	// drawn nr value, a program counter, an option bit mask — whatever the
	// program encoded).
	Arg int64
	// Apply performs the action on w for philosopher p. Call it through Do so
	// that Arg is threaded correctly.
	Apply func(w *World, p graph.PhilID, arg int64)
}

// Do applies the outcome to world w for philosopher p, threading Arg.
func (o *Outcome) Do(w *World, p graph.PhilID) { o.Apply(w, p, o.Arg) }

// Program is a philosopher algorithm: the paper's Tables 1–4 and the baseline
// solutions of the introduction. The same program is run by every philosopher
// (the symmetry condition); all per-philosopher state lives in the World.
type Program interface {
	// Name returns the algorithm name ("LR1", "GDP2", ...).
	Name() string
	// Init prepares algorithm-specific initial state on a fresh World (for
	// example the shared ticket counter of the ticket-box baseline). Most
	// algorithms need nothing beyond NewWorld's defaults.
	Init(w *World)
	// Outcomes appends the possible next atomic actions of philosopher p in
	// world w to buf and returns the extended buffer (pass nil, or a scratch
	// buffer truncated to length 0, exactly as with append). It must produce
	// at least one outcome: a philosopher that cannot progress (busy waiting)
	// gets an outcome that re-performs the failed test. Outcomes must not
	// mutate w; only applying one of them may. Equal protocol states must
	// produce identical outcome sets.
	Outcomes(w *World, p graph.PhilID, buf []Outcome) []Outcome
	// Symmetric reports whether the algorithm satisfies the paper's symmetry
	// and full-distribution conditions (identical code, no shared state other
	// than the forks, no central control). The baselines of the introduction
	// return false.
	Symmetric() bool
}

// SideSymmetricProgram is an optional extension of Program for algorithms
// whose code is additionally invariant under swapping every philosopher's
// left and right fork — the gate for quotienting by orientation-reversing
// topology automorphisms (ring reflections). An unbiased coin flip between
// left and right is side-symmetric; a biased one, or a deterministic
// tie-break toward one side (GDP1's "prefer left on equal NR", Naive's
// left-first order), is not. Programs that do not implement the interface
// are conservatively treated as side-asymmetric.
type SideSymmetricProgram interface {
	Program
	// SideSymmetric reports whether the program's behaviour is invariant
	// under the left/right swap in its current configuration.
	SideSymmetric() bool
}

// HungerModel decides when thinking philosophers become hungry. The paper
// assumes "think may not terminate": the end of thinking is not under the
// algorithm's control, so it is a property of the workload, not of the
// program.
type HungerModel interface {
	// Name returns the model's name for reports.
	Name() string
	// HungerProbability returns the probability that philosopher p, scheduled
	// while thinking, becomes hungry at this step.
	HungerProbability(w *World, p graph.PhilID) float64
}

// AlwaysHungry is the saturated workload: thinking terminates immediately, so
// every philosopher re-enters the trying section as soon as it is scheduled.
// This is the workload of the paper's progress and lockout analyses ("whenever
// a philosopher is hungry...").
type AlwaysHungry struct{}

// Name implements HungerModel.
func (AlwaysHungry) Name() string { return "always-hungry" }

// HungerProbability implements HungerModel.
func (AlwaysHungry) HungerProbability(*World, graph.PhilID) float64 { return 1 }

// NeverHungryAgainAfter is a workload in which each philosopher becomes hungry
// until it has eaten Limit times and then thinks forever. Limit 0 means the
// philosopher never becomes hungry at all. It reads the EatsBy metric, so it
// must not be used with protocol-only worlds (CloneProtocol).
type NeverHungryAgainAfter struct {
	Limit int64
}

// Name implements HungerModel.
func (m NeverHungryAgainAfter) Name() string { return fmt.Sprintf("appetite-%d", m.Limit) }

// HungerProbability implements HungerModel.
func (m NeverHungryAgainAfter) HungerProbability(w *World, p graph.PhilID) float64 {
	if w.EatsBy[p] >= m.Limit {
		return 0
	}
	return 1
}

// BernoulliHunger is a workload in which a scheduled thinking philosopher
// becomes hungry with fixed probability P.
type BernoulliHunger struct {
	P float64
}

// Name implements HungerModel.
func (m BernoulliHunger) Name() string { return fmt.Sprintf("bernoulli-%.2f", m.P) }

// HungerProbability implements HungerModel.
func (m BernoulliHunger) HungerProbability(*World, graph.PhilID) float64 { return m.P }

// applyBecomeHungry performs the "become hungry" bookkeeping and jumps to the
// program counter in arg.
func applyBecomeHungry(w *World, p graph.PhilID, arg int64) {
	w.BecomeHungry(p)
	w.Phils[p].PC = uint8(arg)
}

// applyStayThinking records a scheduled thinking philosopher that kept
// thinking.
func applyStayThinking(w *World, p graph.PhilID, _ int64) {
	w.StayThinking(p)
}

// ThinkOutcomes is a helper for programs: it appends the outcome set of a
// scheduled thinking philosopher under the world's hunger model to buf. When
// the philosopher becomes hungry, the standard bookkeeping runs and its
// program counter is set to hungryPC (the first line of the trying section).
func ThinkOutcomes(w *World, p graph.PhilID, buf []Outcome, hungryPC uint8) []Outcome {
	prob := 1.0
	if w.Hunger != nil {
		prob = w.Hunger.HungerProbability(w, p)
	}
	hungry := Outcome{
		Prob:  prob,
		Label: "become hungry",
		Arg:   int64(hungryPC),
		Apply: applyBecomeHungry,
	}
	if prob >= 1 {
		hungry.Prob = 1
		return append(buf, hungry)
	}
	think := Outcome{
		Prob:  1 - prob,
		Label: "keep thinking",
		Apply: applyStayThinking,
	}
	if prob <= 0 {
		think.Prob = 1
		return append(buf, think)
	}
	return append(buf, hungry, think)
}

// SampleOutcome selects one of the outcomes according to their probabilities
// using rng and returns a pointer into the slice. It panics if outcomes is
// empty. It consumes at most one random draw and allocates nothing.
func SampleOutcome(outcomes []Outcome, rng *prng.Source) *Outcome {
	switch len(outcomes) {
	case 0:
		panic("sim: empty outcome set")
	case 1:
		return &outcomes[0]
	}
	// Mirrors prng.Source.Weighted so seeded runs keep their exact draws:
	// negative weights count as zero, and floating-point slack falls back to
	// the last positive-probability outcome.
	total := 0.0
	for i := range outcomes {
		if outcomes[i].Prob > 0 {
			total += outcomes[i].Prob
		}
	}
	if total <= 0 {
		panic("sim: outcome probabilities sum to zero")
	}
	target := rng.Float64() * total
	acc := 0.0
	for i := range outcomes {
		if outcomes[i].Prob <= 0 {
			continue
		}
		acc += outcomes[i].Prob
		if target < acc {
			return &outcomes[i]
		}
	}
	for i := len(outcomes) - 1; i >= 0; i-- {
		if outcomes[i].Prob > 0 {
			return &outcomes[i]
		}
	}
	return &outcomes[len(outcomes)-1]
}

// ValidateOutcomes checks that an outcome set is well formed: non-empty, all
// probabilities positive, summing to 1 within tolerance. Used by tests and by
// the engine in debug mode.
func ValidateOutcomes(outcomes []Outcome) error {
	if len(outcomes) == 0 {
		return fmt.Errorf("sim: empty outcome set")
	}
	sum := 0.0
	for i := range outcomes {
		o := &outcomes[i]
		if o.Prob <= 0 {
			return fmt.Errorf("sim: outcome %d (%q) has non-positive probability %v", i, o.Label, o.Prob)
		}
		if o.Apply == nil {
			return fmt.Errorf("sim: outcome %d (%q) has nil Apply", i, o.Label)
		}
		sum += o.Prob
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("sim: outcome probabilities sum to %v, want 1", sum)
	}
	return nil
}

package sim

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Outcome is one possible result of the next atomic action of a scheduled
// philosopher. Deterministic actions have a single outcome with probability 1;
// the random draws of the algorithms (random_choice(left, right) and
// random[1, m]) have one outcome per possible result.
//
// Apply mutates the World the Outcome was computed from. Outcomes must be
// applied at most once, and only to that World.
type Outcome struct {
	// Prob is the probability of this outcome. The probabilities of the
	// outcomes returned together must sum to 1 (within rounding).
	Prob float64
	// Label is a short human-readable description ("commit left", "nr:=3").
	Label string
	// Apply performs the action.
	Apply func()
}

// Program is a philosopher algorithm: the paper's Tables 1–4 and the baseline
// solutions of the introduction. The same program is run by every philosopher
// (the symmetry condition); all per-philosopher state lives in the World.
type Program interface {
	// Name returns the algorithm name ("LR1", "GDP2", ...).
	Name() string
	// Init prepares algorithm-specific initial state on a fresh World (for
	// example the shared ticket counter of the ticket-box baseline). Most
	// algorithms need nothing beyond NewWorld's defaults.
	Init(w *World)
	// Outcomes returns the possible next atomic actions of philosopher p in
	// world w. It must return at least one outcome: a philosopher that cannot
	// progress (busy waiting) returns an outcome that re-performs the failed
	// test. Outcomes must not mutate w; only applying one of them may.
	Outcomes(w *World, p graph.PhilID) []Outcome
	// Symmetric reports whether the algorithm satisfies the paper's symmetry
	// and full-distribution conditions (identical code, no shared state other
	// than the forks, no central control). The baselines of the introduction
	// return false.
	Symmetric() bool
}

// HungerModel decides when thinking philosophers become hungry. The paper
// assumes "think may not terminate": the end of thinking is not under the
// algorithm's control, so it is a property of the workload, not of the
// program.
type HungerModel interface {
	// Name returns the model's name for reports.
	Name() string
	// HungerProbability returns the probability that philosopher p, scheduled
	// while thinking, becomes hungry at this step.
	HungerProbability(w *World, p graph.PhilID) float64
}

// AlwaysHungry is the saturated workload: thinking terminates immediately, so
// every philosopher re-enters the trying section as soon as it is scheduled.
// This is the workload of the paper's progress and lockout analyses ("whenever
// a philosopher is hungry...").
type AlwaysHungry struct{}

// Name implements HungerModel.
func (AlwaysHungry) Name() string { return "always-hungry" }

// HungerProbability implements HungerModel.
func (AlwaysHungry) HungerProbability(*World, graph.PhilID) float64 { return 1 }

// NeverHungryAgainAfter is a workload in which each philosopher becomes hungry
// until it has eaten Limit times and then thinks forever. Limit 0 means the
// philosopher never becomes hungry at all.
type NeverHungryAgainAfter struct {
	Limit int64
}

// Name implements HungerModel.
func (m NeverHungryAgainAfter) Name() string { return fmt.Sprintf("appetite-%d", m.Limit) }

// HungerProbability implements HungerModel.
func (m NeverHungryAgainAfter) HungerProbability(w *World, p graph.PhilID) float64 {
	if w.EatsBy[p] >= m.Limit {
		return 0
	}
	return 1
}

// BernoulliHunger is a workload in which a scheduled thinking philosopher
// becomes hungry with fixed probability P.
type BernoulliHunger struct {
	P float64
}

// Name implements HungerModel.
func (m BernoulliHunger) Name() string { return fmt.Sprintf("bernoulli-%.2f", m.P) }

// HungerProbability implements HungerModel.
func (m BernoulliHunger) HungerProbability(*World, graph.PhilID) float64 { return m.P }

// ThinkOutcomes is a helper for programs: it builds the outcome set of a
// scheduled thinking philosopher under the world's hunger model, calling
// onHungry (which typically performs the paper's "become hungry" bookkeeping
// and advances the program counter) when the philosopher becomes hungry.
func ThinkOutcomes(w *World, p graph.PhilID, onHungry func()) []Outcome {
	prob := 1.0
	if w.Hunger != nil {
		prob = w.Hunger.HungerProbability(w, p)
	}
	hungryOutcome := Outcome{
		Prob:  prob,
		Label: "become hungry",
		Apply: onHungry,
	}
	if prob >= 1 {
		hungryOutcome.Prob = 1
		return []Outcome{hungryOutcome}
	}
	thinkOutcome := Outcome{
		Prob:  1 - prob,
		Label: "keep thinking",
		Apply: func() { w.StayThinking(p) },
	}
	if prob <= 0 {
		thinkOutcome.Prob = 1
		return []Outcome{thinkOutcome}
	}
	return []Outcome{hungryOutcome, thinkOutcome}
}

// SampleOutcome selects one of the outcomes according to their probabilities
// using rng. It panics if outcomes is empty.
func SampleOutcome(outcomes []Outcome, rng *prng.Source) Outcome {
	switch len(outcomes) {
	case 0:
		panic("sim: empty outcome set")
	case 1:
		return outcomes[0]
	}
	weights := make([]float64, len(outcomes))
	for i, o := range outcomes {
		weights[i] = o.Prob
	}
	return outcomes[rng.Weighted(weights)]
}

// ValidateOutcomes checks that an outcome set is well formed: non-empty, all
// probabilities positive, summing to 1 within tolerance. Used by tests and by
// the engine in debug mode.
func ValidateOutcomes(outcomes []Outcome) error {
	if len(outcomes) == 0 {
		return fmt.Errorf("sim: empty outcome set")
	}
	sum := 0.0
	for i, o := range outcomes {
		if o.Prob <= 0 {
			return fmt.Errorf("sim: outcome %d (%q) has non-positive probability %v", i, o.Label, o.Prob)
		}
		if o.Apply == nil {
			return fmt.Errorf("sim: outcome %d (%q) has nil Apply", i, o.Label)
		}
		sum += o.Prob
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("sim: outcome probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Package detsource is dplint testdata. It lives under internal/sim (in a
// testdata directory the go tool and the module-wide lint walk both skip),
// so its natural import path puts it inside the deterministic core and the
// detsource analyzer engages.
package detsource

import (
	"math/rand" // want `deterministic package .* imports math/rand`
	"os"
	"time"

	"repro/internal/prng"
)

// stamp reads the wall clock.
func stamp() int64 {
	t := time.Now() // want `time.Now reads the wall clock`
	return t.UnixNano()
}

// elapsed uses time.Since; mentioning time.Duration in the signature is fine.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

// env reads the process environment.
func env() string {
	return os.Getenv("SEED") // want `os.Getenv reads the process environment`
}

// lookup uses the two-value form.
func lookup() (string, bool) {
	return os.LookupEnv("SEED") // want `os.LookupEnv reads the process environment`
}

// global draws from the (already flagged) math/rand import; the import is
// the single finding, uses are not double-reported.
func global() int {
	return rand.Intn(6)
}

// seeded is the sanctioned source of randomness.
func seeded(seed uint64) float64 {
	rng := prng.New(seed)
	return rng.Float64()
}

// suppressed documents an accepted wall-clock read.
func suppressed() time.Time {
	//dplint:ok detsource process start stamp, reported only and never fed back into results
	return time.Now()
}

var _ = []any{stamp, elapsed, env, lookup, global, seeded, suppressed}

// Package hotalloc is dplint testdata. It declares its own Outcome struct
// shaped like sim.Outcome (the analyzer matches by name and field, not
// import path), and it lives under internal/sim so its natural import path
// is a hot package and the fmt rule engages.
package hotalloc

import "fmt"

type World struct{ X int }

type PhilID int32

type Outcome struct {
	Prob  float64
	Label string
	Arg   int64
	Apply func(w *World, p PhilID, arg int64)
}

func applyStatic(w *World, p PhilID, arg int64) { w.X += int(arg) }

// good binds a static function: the sanctioned form.
func good(buf []Outcome) []Outcome {
	return append(buf, Outcome{Prob: 1, Label: "ok", Apply: applyStatic})
}

// keyedLiteral closes over f, allocating per outcome set.
func keyedLiteral(buf []Outcome, f int64) []Outcome {
	return append(buf, Outcome{
		Prob: 1,
		Apply: func(w *World, p PhilID, arg int64) { // want `function literal bound to Outcome.Apply`
			w.X += int(f)
		},
	})
}

// positionalLiteral hits the positional-field path of the check.
func positionalLiteral() Outcome {
	return Outcome{1, "x", 0, func(w *World, p PhilID, arg int64) {}} // want `function literal bound to Outcome.Apply`
}

// fieldAssign stores a literal through a selector.
func fieldAssign(o *Outcome) {
	o.Apply = func(w *World, p PhilID, arg int64) {} // want `function literal bound to Outcome.Apply`
}

func takesApply(apply func(w *World, p PhilID, arg int64)) { _ = apply }

// paramLiteral passes a literal to an Apply-typed parameter.
func paramLiteral() {
	takesApply(func(w *World, p PhilID, arg int64) {}) // want `function literal bound to Outcome.Apply`
}

// hotFormat formats on a non-error path of a (nominally) hot package.
func hotFormat(p PhilID) string {
	return fmt.Sprintf("P%d", p) // want `fmt.Sprintf allocates on a hot path`
}

// errorPath may format: fmt.Errorf is always allowed.
func errorPath(p PhilID) error {
	return fmt.Errorf("philosopher %d missing", p)
}

// panics may format: panic arguments are a cold path.
func panics(p PhilID) {
	panic(fmt.Sprintf("invalid philosopher %d", p))
}

// String is a reporting surface: fmt there is the point.
func (w *World) String() string { return fmt.Sprintf("world %d", w.X) }

// Package-level variable initializers run once at init time.
var tableInit = fmt.Sprintf("precomputed %d", 7)

// suppressedFormat documents an accepted cold-path format.
func suppressedFormat(p PhilID) string {
	//dplint:ok hotalloc cold diagnostics helper used only by examples
	return fmt.Sprintf("P%d", p)
}

var _ = []any{good, keyedLiteral, positionalLiteral, fieldAssign, paramLiteral, hotFormat, errorPath, panics, tableInit, suppressedFormat}

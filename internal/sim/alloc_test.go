package sim

import (
	"testing"

	"repro/internal/graph"
)

// The tests in this file pin the steady-state allocation budgets of the
// model-checking hot paths: encoding a state key into a reused buffer and
// protocol-cloning into a reused world must not allocate at all, and a fresh
// protocol clone must stay within a handful of bulk copies.

// dirtyWorld returns a world with every kind of protocol state populated, so
// the key encoder exercises all of its branches.
func dirtyWorld(t *testing.T) *World {
	t.Helper()
	topo := graph.Theorem2Minimal() // theta: a fork with three adjacent slots
	w := NewWorld(topo)
	w.BecomeHungry(0)
	w.Commit(0, topo.Left(0))
	w.TryTake(0, topo.Left(0))
	w.MarkHoldingFirst(0)
	w.Request(1, topo.Left(1))
	w.SetNR(0, topo.Left(0), 3)
	w.Step = 5
	w.SignGuestBook(0, topo.Left(0))
	w.Step = 9
	w.SignGuestBook(2, topo.Left(2))
	w.SetGlobal(1, 42)
	return w
}

func TestAppendKeyDoesNotAllocate(t *testing.T) {
	w := dirtyWorld(t)
	buf := w.AppendKey(nil) // warm the buffer to its steady-state capacity
	if len(buf) == 0 {
		t.Fatal("empty key")
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = w.AppendKey(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendKey with a warm buffer allocates %.1f times per call, want 0", allocs)
	}
}

func TestCloneProtocolIntoDoesNotAllocate(t *testing.T) {
	w := dirtyWorld(t)
	dst := w.CloneProtocol()
	allocs := testing.AllocsPerRun(200, func() {
		dst = w.CloneProtocolInto(dst)
	})
	if allocs != 0 {
		t.Errorf("CloneProtocolInto with a reusable destination allocates %.1f times per call, want 0", allocs)
	}
}

func TestCloneProtocolAllocationBudget(t *testing.T) {
	w := dirtyWorld(t)
	// A fresh protocol clone is one World plus one backing array per protocol
	// slice (Phils, Forks, req, used, Globals) — no per-fork allocations.
	const budget = 6
	allocs := testing.AllocsPerRun(100, func() {
		_ = w.CloneProtocol()
	})
	if allocs > budget {
		t.Errorf("CloneProtocol allocates %.1f times per call, budget %d", allocs, budget)
	}
}

func TestCloneProtocolMatchesCloneKey(t *testing.T) {
	w := dirtyWorld(t)
	if got, want := w.CloneProtocol().Key(), w.Clone().Key(); got != want {
		t.Error("CloneProtocol and Clone disagree on the protocol state key")
	}
}

func TestCloneProtocolIntoIsIndependent(t *testing.T) {
	w := dirtyWorld(t)
	c := w.CloneProtocolInto(w.CloneProtocol())
	c.SetNR(0, 0, 7)
	c.Request(2, c.Topo.Left(2))
	if w.NR(0) == 7 {
		t.Error("mutating the protocol clone changed the original's nr")
	}
	if w.HasRequest(2, w.Topo.Left(2)) {
		t.Error("mutating the protocol clone changed the original's request list")
	}
}

package sim

import (
	"fmt"

	"repro/internal/graph"
)

// The operations in this file are the shared-variable primitives of the
// paper: atomic test-and-set / release of forks, the nr field of GDP1/GDP2,
// and the request list r and guest book g of LR2/GDP2. Philosopher programs
// compose them inside Outcome.Apply functions; each helper performs exactly
// one paper-level operation and keeps philosopher and fork bookkeeping
// consistent. Metric updates are skipped on protocol-only worlds
// (CloneProtocol), whose metric slices are nil.

// BecomeHungry moves philosopher p from thinking to the trying section.
func (w *World) BecomeHungry(p graph.PhilID) {
	st := &w.Phils[p]
	st.Phase = Hungry
	if w.HungrySince != nil {
		w.HungrySince[p] = w.Step
	}
	w.emit(EventBecameHungry, p, graph.NoFork, 0)
}

// StayThinking records that p was scheduled while thinking and did not become
// hungry.
func (w *World) StayThinking(p graph.PhilID) {
	w.emit(EventStillThinking, p, graph.NoFork, 0)
}

// Commit records p selecting fork f as its first fork (not yet taken).
func (w *World) Commit(p graph.PhilID, f graph.ForkID) {
	st := &w.Phils[p]
	st.First = f
	st.HasFirst = false
	st.HasSecond = false
	w.emit(EventCommitted, p, f, 0)
}

// TryTake performs the atomic "if isFree(fork) then take(fork)" test-and-set
// for philosopher p on fork f. It returns true when the fork was free and is
// now held by p. The caller is responsible for updating the program counter
// based on the result and for calling MarkHolding to reflect which of p's two
// holdings f is.
func (w *World) TryTake(p graph.PhilID, f graph.ForkID) bool {
	if w.Forks[f].Holder != graph.NoPhil {
		w.emit(EventForkBusy, p, f, int64(w.Forks[f].Holder))
		return false
	}
	if w.pending != nil && w.forkReserved(f) {
		// An in-flight grant (delayed-grants fault model) commits the fork to
		// its holder-to-be; everyone finds it busy until the grant arrives.
		w.emit(EventForkBusy, p, f, int64(graph.NoPhil))
		return false
	}
	w.Forks[f].Holder = p
	w.emit(EventTookFork, p, f, 0)
	return true
}

// MarkHoldingFirst records on p's side that it now holds its first fork.
func (w *World) MarkHoldingFirst(p graph.PhilID) { w.Phils[p].HasFirst = true }

// MarkHoldingSecond records on p's side that it now holds its second fork.
func (w *World) MarkHoldingSecond(p graph.PhilID) { w.Phils[p].HasSecond = true }

// Release releases fork f held by p. It panics if p does not hold f, because
// such a release is a bug in the calling algorithm, not a runtime condition.
func (w *World) Release(p graph.PhilID, f graph.ForkID) {
	if w.Forks[f].Holder != p {
		panic(fmt.Sprintf("sim: philosopher %d releasing fork %d held by %d", p, f, w.Forks[f].Holder))
	}
	w.Forks[f].Holder = graph.NoPhil
	st := &w.Phils[p]
	if st.First == f {
		st.HasFirst = false
	} else if st.First != graph.NoFork && w.Topo.OtherFork(p, st.First) == f {
		st.HasSecond = false
	}
	w.emit(EventReleasedFork, p, f, 0)
}

// ReleaseAll releases every fork currently held by p (used by the combined
// "release(fork); release(other(fork))" lines and by tests). The first fork
// is released before the second, matching the paper's pseudo-code order.
func (w *World) ReleaseAll(p graph.PhilID) {
	st := &w.Phils[p]
	if st.HasFirst {
		w.Release(p, st.First)
	}
	if st.HasSecond {
		w.Release(p, w.Topo.OtherFork(p, st.First))
	}
}

// ClearSelection removes p's current first-fork selection. The algorithms call
// it when they release their first fork and jump back to the selection step,
// so that observers (adversaries, traces, the model checker) see the
// philosopher as having no pending commitment rather than a stale one.
func (w *World) ClearSelection(p graph.PhilID) {
	st := &w.Phils[p]
	st.First = graph.NoFork
	st.HasFirst = false
	st.HasSecond = false
}

// SetNR sets the nr field of fork f to value on behalf of philosopher p.
func (w *World) SetNR(p graph.PhilID, f graph.ForkID, value int) {
	w.Forks[f].NR = value
	w.emit(EventChangedNR, p, f, int64(value))
}

// NR returns the nr field of fork f.
func (w *World) NR(f graph.ForkID) int { return w.Forks[f].NR }

// StartEating marks p as eating (it must hold both forks) and updates the
// first-eat metrics.
func (w *World) StartEating(p graph.PhilID) {
	st := &w.Phils[p]
	if !st.HasFirst || !st.HasSecond {
		panic(fmt.Sprintf("sim: philosopher %d starting to eat without both forks", p))
	}
	st.Phase = Eating
	if w.FirstEatStep < 0 {
		w.FirstEatStep = w.Step
	}
	if w.FirstEatBy != nil && w.FirstEatBy[p] < 0 {
		w.FirstEatBy[p] = w.Step
	}
	if w.HungrySince != nil && w.HungrySince[p] >= 0 {
		w.TotalWait += w.Step - w.HungrySince[p]
		w.HungrySince[p] = -1
	}
	w.emit(EventStartEat, p, graph.NoFork, 0)
}

// FinishEating records the completion of p's meal. The forks are NOT released
// here; the algorithms release them in their own subsequent atomic steps, as
// in the paper's pseudo-code.
func (w *World) FinishEating(p graph.PhilID) {
	w.TotalEats++
	var eats int64
	if w.EatsBy != nil {
		w.EatsBy[p]++
		eats = w.EatsBy[p]
	}
	w.emit(EventDoneEat, p, graph.NoFork, eats)
}

// BackToThinking resets p's trying-section bookkeeping and returns it to the
// thinking phase with the given program counter.
func (w *World) BackToThinking(p graph.PhilID, pc uint8) {
	st := &w.Phils[p]
	st.Phase = Thinking
	st.PC = pc
	st.First = graph.NoFork
	st.HasFirst = false
	st.HasSecond = false
}

// --- Crash faults (package fault) ---

// Crash removes philosopher p from the protocol: its held forks are released
// (in the paper's release order), its outstanding requests are withdrawn (the
// fork objects garbage-collect a crashed guest), its selection and volatile
// local state are cleared, and it is parked in the thinking section with the
// Crashed flag set. Guest books keep p's history — signatures are durable
// fork-side state. Only fault models call Crash; it keeps every invariant of
// CheckInvariants.
func (w *World) Crash(p graph.PhilID) {
	w.ReleaseAll(p)
	for _, f := range w.Topo.Forks(p) {
		if w.HasRequest(p, f) {
			w.Unrequest(p, f)
		}
	}
	st := &w.Phils[p]
	st.Phase = Thinking
	st.PC = 1
	st.First = graph.NoFork
	st.HasFirst = false
	st.HasSecond = false
	st.Aux = [2]int64{}
	st.Crashed = true
	if w.HungrySince != nil {
		w.HungrySince[p] = -1
	}
	w.emit(EventCrashed, p, graph.NoFork, 0)
}

// Rejoin re-enters a crashed philosopher into the protocol. Crash already
// parked it at the initial thinking state, so clearing the flag is the whole
// recovery.
func (w *World) Rejoin(p graph.PhilID) {
	w.Phils[p].Crashed = false
	w.emit(EventRejoined, p, graph.NoFork, 0)
}

// StayCrashed records a crashed philosopher being scheduled while it remains
// crashed (the fault layer's self-loop outcome).
func (w *World) StayCrashed(p graph.PhilID) {
	w.emit(EventStillCrashed, p, graph.NoFork, 0)
}

// LoseGrant records a hungry philosopher's step no-opping because a fault
// model lost its fork grant.
func (w *World) LoseGrant(p graph.PhilID) {
	w.emit(EventGrantLost, p, graph.NoFork, 0)
}

// IsCrashed reports whether philosopher p is currently crashed.
func (w *World) IsCrashed(p graph.PhilID) bool { return w.Phils[p].Crashed }

// --- Delayed grants (package fault) ---
//
// The delayed-grants fault model replaces a successful take of a free fork
// with a reservation: the fork stays unheld but committed to its
// holder-to-be (TryTake and IsFree report it busy to everyone), and the
// philosopher stalls — its scheduled steps offer only deliver/decrement
// branches — until the grant arrives. Delivery releases the reservation and
// unstalls the philosopher, whose next scheduled step re-executes its take
// step against a fork that the reservation kept free, so every algorithm
// completes the acquisition through its own unmodified code path.

// GrantInFlight replaces philosopher p's take of fork f with an in-flight
// grant carrying remaining-delay counter delay (at most MaxGrantDelay). The
// fork must be free; p's own state is left untouched.
func (w *World) GrantInFlight(p graph.PhilID, f graph.ForkID, delay uint8) {
	if delay > MaxGrantDelay {
		panic(fmt.Sprintf("sim: grant delay %d exceeds MaxGrantDelay %d", delay, MaxGrantDelay))
	}
	if w.Forks[f].Holder != graph.NoPhil {
		panic(fmt.Sprintf("sim: grant of held fork %d put in flight to philosopher %d", f, p))
	}
	w.EnsurePending()
	w.pending.slots[w.slotIndex(f, p)] = pendingInFlight | delay
	w.emit(EventGrantInFlight, p, f, int64(delay))
}

// DelayGrant decrements the remaining-delay counter of the grant in flight
// to philosopher p on fork f (saturating at zero). It panics without an
// in-flight grant, because only the fault model's delay branch calls it.
func (w *World) DelayGrant(p graph.PhilID, f graph.ForkID) {
	idx := w.slotIndex(f, p)
	v := w.pending.slots[idx]
	if v&pendingInFlight == 0 {
		panic(fmt.Sprintf("sim: delaying fork %d with no grant in flight to philosopher %d", f, p))
	}
	if v&pendingDelayMask > 0 {
		v--
	}
	w.pending.slots[idx] = v
	w.emit(EventGrantDelayed, p, f, int64(v&pendingDelayMask))
}

// DeliverGrant delivers the grant in flight to philosopher p on fork f: the
// reservation is released and p resumes its protocol at its next scheduled
// step (re-executing the take that was put in flight). It panics without an
// in-flight grant.
func (w *World) DeliverGrant(p graph.PhilID, f graph.ForkID) {
	idx := w.slotIndex(f, p)
	if w.pending.slots[idx]&pendingInFlight == 0 {
		panic(fmt.Sprintf("sim: delivering fork %d with no grant in flight to philosopher %d", f, p))
	}
	w.pending.slots[idx] = 0
	w.emit(EventGrantDelivered, p, f, 0)
}

// PendingGrant returns the fork with a grant currently in flight to
// philosopher p and its remaining-delay counter, or (graph.NoFork, 0, false).
// A stalled philosopher has exactly one grant in flight.
func (w *World) PendingGrant(p graph.PhilID) (graph.ForkID, uint8, bool) {
	if w.pending == nil {
		return graph.NoFork, 0, false
	}
	for _, f := range w.Topo.Forks(p) {
		if v := w.pending.slots[w.slotIndex(f, p)]; v&pendingInFlight != 0 {
			return f, v & pendingDelayMask, true
		}
	}
	return graph.NoFork, 0, false
}

// forkReserved reports whether fork f has a grant in flight to any adjacent
// philosopher. Callers check w.pending != nil first.
func (w *World) forkReserved(f graph.ForkID) bool {
	base := w.Topo.SlotBase(f)
	for s := 0; s < w.Topo.Degree(f); s++ {
		if w.pending.slots[base+s]&pendingInFlight != 0 {
			return true
		}
	}
	return false
}

// --- Request lists and guest books (LR2 / GDP2) ---

// slotIndex returns p's index into the flat req/used arrays for fork f.
func (w *World) slotIndex(f graph.ForkID, p graph.PhilID) int {
	return w.Topo.SlotBase(f) + w.Topo.Slot(f, p)
}

// Request inserts p into fork f's request list r.
func (w *World) Request(p graph.PhilID, f graph.ForkID) {
	w.req[w.slotIndex(f, p)] = true
	w.emit(EventRequested, p, f, 0)
}

// Unrequest removes p from fork f's request list r.
func (w *World) Unrequest(p graph.PhilID, f graph.ForkID) {
	w.req[w.slotIndex(f, p)] = false
	w.emit(EventUnrequested, p, f, 0)
}

// HasRequest reports whether p currently has a request on fork f.
func (w *World) HasRequest(p graph.PhilID, f graph.ForkID) bool {
	return w.req[w.slotIndex(f, p)]
}

// SignGuestBook records in fork f's guest book that p has just used it.
func (w *World) SignGuestBook(p graph.PhilID, f graph.ForkID) {
	w.used[w.slotIndex(f, p)] = w.Step
	w.emit(EventSignedGuestBook, p, f, 0)
}

// GuestBookEmpty reports whether no philosopher has ever signed fork f's
// guest book. (Used to check the Theorem 2 observation that the adversary can
// keep the guest books of the trapped region empty forever.)
func (w *World) GuestBookEmpty(f graph.ForkID) bool {
	for _, u := range w.ForkUsed(f) {
		if u >= 0 {
			return false
		}
	}
	return true
}

// RecordBlockedByCond records that p examined fork f but declined to take it
// because the courtesy condition Cond(fork) was false (LR2/GDP2 line 4).
func (w *World) RecordBlockedByCond(p graph.PhilID, f graph.ForkID) {
	w.emit(EventBlockedByCond, p, f, 0)
}

// Cond evaluates the courtesy condition Cond(fork) of Section 3.2 for
// philosopher p on fork f: p may take the fork only if every other
// philosopher with an outstanding request on f has used the fork no earlier
// than p's own last use (equivalently, p is not "ahead" of any hungry
// neighbour on this fork). With empty request lists or empty guest books the
// condition is vacuously true, matching the paper's initial state.
func (w *World) Cond(p graph.PhilID, f graph.ForkID) bool {
	base := w.Topo.SlotBase(f)
	deg := w.Topo.Degree(f)
	mySlot := w.Topo.Slot(f, p)
	myUse := w.used[base+mySlot]
	for slot := 0; slot < deg; slot++ {
		if !w.req[base+slot] || slot == mySlot {
			continue
		}
		if w.used[base+slot] < myUse {
			return false
		}
	}
	return true
}

// --- Globals (shared state for the non-distributed baselines) ---

// EnsureGlobals grows the Globals slice to at least n entries (zero-filled).
func (w *World) EnsureGlobals(n int) {
	for len(w.Globals) < n {
		w.Globals = append(w.Globals, 0)
	}
}

// Global returns global auxiliary register i (0 if never set).
func (w *World) Global(i int) int64 {
	if i >= len(w.Globals) {
		return 0
	}
	return w.Globals[i]
}

// SetGlobal sets global auxiliary register i.
func (w *World) SetGlobal(i int, v int64) {
	w.EnsureGlobals(i + 1)
	w.Globals[i] = v
	w.emit(EventAux, graph.NoPhil, graph.NoFork, v)
}

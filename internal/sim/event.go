package sim

import (
	"fmt"

	"repro/internal/graph"
)

// EventKind classifies the atomic actions of the algorithms.
type EventKind uint8

const (
	// EventScheduled records that the adversary scheduled a philosopher
	// (emitted once per step by the engine before the action is applied).
	EventScheduled EventKind = iota
	// EventBecameHungry records the end of the thinking section.
	EventBecameHungry
	// EventStillThinking records a scheduled philosopher that kept thinking.
	EventStillThinking
	// EventCommitted records a philosopher selecting its first fork (the
	// "empty arrow" of the paper's figures).
	EventCommitted
	// EventTookFork records a successful test-and-set on a fork.
	EventTookFork
	// EventForkBusy records a failed attempt to take a fork (busy wait).
	EventForkBusy
	// EventBlockedByCond records a failed attempt because the courtesy
	// condition Cond(fork) was false (LR2/GDP2 only).
	EventBlockedByCond
	// EventReleasedFork records a fork release.
	EventReleasedFork
	// EventChangedNR records a philosopher re-randomising a fork's nr value
	// (GDP1/GDP2 step "fork.nr := random[1,m]").
	EventChangedNR
	// EventStartEat records the acquisition of the second fork: the
	// philosopher begins eating.
	EventStartEat
	// EventDoneEat records the completion of a meal.
	EventDoneEat
	// EventRequested records insertion into a fork's request list.
	EventRequested
	// EventUnrequested records removal from a fork's request list.
	EventUnrequested
	// EventSignedGuestBook records a signature in a fork's guest book.
	EventSignedGuestBook
	// EventAux records an algorithm-specific auxiliary action (baselines).
	EventAux
	// EventCrashed records a philosopher crashing: a fault model removed it
	// from the protocol and its held forks were dropped.
	EventCrashed
	// EventRejoined records a crashed philosopher re-entering the protocol in
	// the thinking section.
	EventRejoined
	// EventStillCrashed records a crashed philosopher being scheduled while
	// it stays crashed (a fault-layer self-loop).
	EventStillCrashed
	// EventGrantLost records a hungry philosopher's scheduled step no-opping
	// because a fault model lost its fork grant.
	EventGrantLost
	// EventGrantInFlight records a fault model replacing a philosopher's take
	// of a free fork with an in-flight grant (the fork is reserved, the
	// philosopher stalls). Detail is the remaining-delay counter.
	EventGrantInFlight
	// EventGrantDelayed records a stalled philosopher's scheduled step
	// decrementing its in-flight grant's remaining-delay counter. Detail is
	// the counter after the decrement.
	EventGrantDelayed
	// EventGrantDelivered records an in-flight grant arriving: the fork's
	// reservation is released and the philosopher resumes its protocol.
	EventGrantDelivered
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventScheduled:
		return "scheduled"
	case EventBecameHungry:
		return "became-hungry"
	case EventStillThinking:
		return "still-thinking"
	case EventCommitted:
		return "committed"
	case EventTookFork:
		return "took-fork"
	case EventForkBusy:
		return "fork-busy"
	case EventBlockedByCond:
		return "blocked-by-cond"
	case EventReleasedFork:
		return "released-fork"
	case EventChangedNR:
		return "changed-nr"
	case EventStartEat:
		return "start-eat"
	case EventDoneEat:
		return "done-eat"
	case EventRequested:
		return "requested"
	case EventUnrequested:
		return "unrequested"
	case EventSignedGuestBook:
		return "signed-guest-book"
	case EventAux:
		return "aux"
	case EventCrashed:
		return "crashed"
	case EventRejoined:
		return "rejoined"
	case EventStillCrashed:
		return "still-crashed"
	case EventGrantLost:
		return "grant-lost"
	case EventGrantInFlight:
		return "grant-in-flight"
	case EventGrantDelayed:
		return "grant-delayed"
	case EventGrantDelivered:
		return "grant-delivered"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one atomic observable action of the system.
type Event struct {
	Step   int64
	Kind   EventKind
	Phil   graph.PhilID
	Fork   graph.ForkID // graph.NoFork when not applicable
	Detail int64        // event-specific detail (for example the new nr value)
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if e.Fork == graph.NoFork {
		return fmt.Sprintf("[%6d] P%d %s", e.Step, e.Phil, e.Kind)
	}
	return fmt.Sprintf("[%6d] P%d %s f%d (%d)", e.Step, e.Phil, e.Kind, e.Fork, e.Detail)
}

// Recorder receives every event emitted by a run. Implementations must be
// cheap; the engine calls Record synchronously.
type Recorder interface {
	Record(Event)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(Event)

// Record implements Recorder.
func (f RecorderFunc) Record(e Event) { f(e) }

// emit records an event if a recorder is installed.
func (w *World) emit(kind EventKind, p graph.PhilID, f graph.ForkID, detail int64) {
	if w.rec == nil {
		return
	}
	w.rec.Record(Event{Step: w.Step, Kind: kind, Phil: p, Fork: f, Detail: detail})
}

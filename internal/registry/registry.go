// Package registry provides the generic, concurrency-safe name→constructor
// registry behind the algorithm, scheduler and topology registries. It is a
// leaf package (standard library only) so that algo, sched and graph can all
// share one implementation of the registration contract: panic on empty
// name, nil constructor or duplicate registration (init-time wiring bugs
// must not be resolved silently by load order), sorted enumeration, and
// one-line unknown-name errors listing the registered options.
package registry

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Registry is a name→value map with the registration contract above. Create
// one with New; the zero value is not usable.
type Registry[T any] struct {
	pkg  string // owning package, prefixed to panics and errors ("algo")
	kind string // human-readable entry kind ("algorithm")
	mu   sync.RWMutex
	m    map[string]T
}

// New returns an empty registry. pkg and kind appear in panic and error
// messages ("algo: unknown algorithm ...").
func New[T any](pkg, kind string) *Registry[T] {
	return &Registry[T]{pkg: pkg, kind: kind, m: map[string]T{}}
}

// Register registers a named entry. It panics if the name is empty, the
// value is nil, or the name is already registered.
func (r *Registry[T]) Register(name string, v T) {
	if name == "" {
		panic(fmt.Sprintf("%s: register %s with empty name", r.pkg, r.kind))
	}
	if isNil(v) {
		panic(fmt.Sprintf("%s: register %s %q with nil constructor", r.pkg, r.kind, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		panic(fmt.Sprintf("%s: %s %q registered twice", r.pkg, r.kind, name))
	}
	r.m[name] = v
}

// Lookup returns the named entry, or a one-line error listing the registered
// names.
func (r *Registry[T]) Lookup(name string) (T, error) {
	r.mu.RLock()
	v, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("%s: unknown %s %q (registered: %s)",
			r.pkg, r.kind, name, strings.Join(r.Names(), ", "))
	}
	return v, nil
}

// Names returns every registered name in sorted order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// isNil reports whether v is a nil function/pointer/interface value; the
// stored T is typically a constructor func, which cannot be compared to nil
// through the type parameter directly.
func isNil(v any) bool {
	if v == nil {
		return true
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Func, reflect.Pointer, reflect.Interface, reflect.Map, reflect.Slice, reflect.Chan:
		return rv.IsNil()
	}
	return false
}

package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestRunRejectsBadConfig(t *testing.T) {
	t.Parallel()
	if _, err := Run(context.Background(), Config{Algorithm: GDP1}); err == nil {
		t.Error("Run accepted a missing topology")
	}
	if _, err := Run(context.Background(), Config{Topology: graph.Ring(3), Algorithm: "nope"}); err == nil {
		t.Error("Run accepted an unknown algorithm")
	}
}

func TestAllAlgorithmsServeEveryoneOnClassicRing(t *testing.T) {
	t.Parallel()
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			t.Parallel()
			metrics, err := Run(context.Background(), Config{
				Topology:                  graph.Ring(5),
				Algorithm:                 alg,
				TargetMealsPerPhilosopher: 3,
				MaxDuration:               10 * time.Second,
				Seed:                      1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(metrics.Starved) != 0 {
				t.Fatalf("%s starved philosophers %v (meals %v)", alg, metrics.Starved, metrics.Meals)
			}
			for p, meals := range metrics.Meals {
				if meals < 3 {
					t.Errorf("%s: philosopher %d completed %d meals, want >= 3", alg, p, meals)
				}
			}
			if metrics.JainIndex <= 0 || metrics.JainIndex > 1 {
				t.Errorf("%s: implausible Jain index %v", alg, metrics.JainIndex)
			}
			if metrics.TotalMeals < 15 {
				t.Errorf("%s: total meals %d, want >= 15", alg, metrics.TotalMeals)
			}
			if metrics.MealsPerSecond <= 0 {
				t.Errorf("%s: throughput not recorded", alg)
			}
		})
	}
}

func TestGDPAlgorithmsOnGeneralizedTopologies(t *testing.T) {
	t.Parallel()
	topos := []*graph.Topology{graph.Figure1A(), graph.Theorem2Minimal(), graph.RingWithChord(6, 3)}
	for _, topo := range topos {
		for _, alg := range []Algorithm{GDP1, GDP2} {
			t.Run(topo.Name()+"/"+string(alg), func(t *testing.T) {
				t.Parallel()
				metrics, err := Run(context.Background(), Config{
					Topology:                  topo,
					Algorithm:                 alg,
					TargetMealsPerPhilosopher: 2,
					MaxDuration:               10 * time.Second,
					Seed:                      7,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(metrics.Starved) != 0 {
					t.Errorf("%s on %s starved %v", alg, topo.Name(), metrics.Starved)
				}
			})
		}
	}
}

func TestRunHonoursContextCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	metrics, err := Run(ctx, Config{
		Topology:    graph.Ring(3),
		Algorithm:   GDP1,
		MaxDuration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Run did not stop promptly after cancellation")
	}
	_ = metrics
}

func TestRunDurationBound(t *testing.T) {
	t.Parallel()
	start := time.Now()
	metrics, err := Run(context.Background(), Config{
		Topology:    graph.Figure1B(),
		Algorithm:   GDP2,
		MaxDuration: 300 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run took %v, expected to stop near the 300ms bound", elapsed)
	}
	if metrics.TotalMeals == 0 {
		t.Error("no meals completed within the duration bound")
	}
	if metrics.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestRunRejectsMessageLevelFaults(t *testing.T) {
	for _, spec := range []string{"lossy-grants:0.2", "delayed-grants:0.1,2"} {
		_, err := Run(context.Background(), Config{
			Topology:  graph.Ring(3),
			Algorithm: LR1,
			Faults:    spec,
		})
		if err == nil {
			t.Errorf("Run accepted message-level fault %q", spec)
			continue
		}
		if !strings.Contains(err.Error(), "crash-family") {
			t.Errorf("Run(%q) error = %q, want the crash-family rejection", spec, err)
		}
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	for _, spec := range []string{"meteor", "crash-rejoin:2", "freeze:0.1@9"} {
		if _, err := Run(context.Background(), Config{
			Topology:  graph.Ring(3),
			Algorithm: LR1,
			Faults:    spec,
		}); err == nil {
			t.Errorf("Run accepted fault spec %q", spec)
		}
	}
}

// TestFreezeStarvesTargets pins the semantics of a certain freeze: the
// targeted philosopher crashes at its first cycle boundary and never eats,
// while the rest of the table keeps serving meals.
func TestFreezeStarvesTargets(t *testing.T) {
	m, err := Run(context.Background(), Config{
		Topology:    graph.Ring(5),
		Algorithm:   LR1,
		Faults:      "freeze:1@2",
		MaxDuration: 300 * time.Millisecond,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Meals[2] != 0 {
		t.Errorf("frozen philosopher 2 ate %d meals", m.Meals[2])
	}
	if m.Crashes[2] != 1 || m.Rejoins[2] != 0 {
		t.Errorf("philosopher 2 crashes/rejoins = %d/%d, want 1/0 (freeze is absorbing)", m.Crashes[2], m.Rejoins[2])
	}
	for p := 0; p < 5; p++ {
		if p == 2 {
			continue
		}
		if m.Crashes[p] != 0 {
			t.Errorf("untargeted philosopher %d crashed %d times", p, m.Crashes[p])
		}
		if m.Meals[p] == 0 {
			t.Errorf("philosopher %d starved next to a frozen neighbour", p)
		}
	}
}

// TestCrashRejoinRunsToTarget checks that crash-rejoin injection perturbs a
// run without wedging it: every philosopher still reaches the meal target,
// and the crash/rejoin ledger is consistent (each rejoin answers a crash).
func TestCrashRejoinRunsToTarget(t *testing.T) {
	m, err := Run(context.Background(), Config{
		Topology:                  graph.Ring(4),
		Algorithm:                 GDP2,
		Faults:                    "crash-rejoin:0.3,0.5",
		TargetMealsPerPhilosopher: 5,
		MaxDuration:               5 * time.Second,
		Seed:                      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var crashes int64
	for p := 0; p < 4; p++ {
		if m.Meals[p] < 5 {
			t.Errorf("philosopher %d ate %d meals, want >= 5", p, m.Meals[p])
		}
		if m.Rejoins[p] > m.Crashes[p] {
			t.Errorf("philosopher %d rejoined %d times but crashed only %d", p, m.Rejoins[p], m.Crashes[p])
		}
		crashes += m.Crashes[p]
	}
	if crashes == 0 {
		t.Error("a 0.3-rate crash-rejoin run recorded no crashes")
	}
}

// TestFaultDecisionStreamIsDeterministic pins the per-seed decision streams:
// with a certain freeze the number of decisions consumed is scheduling-
// independent (exactly one crash each), so two runs of the same seed must
// produce identical crash ledgers, and the algorithm streams must match the
// fault-free split order (checked indirectly: the fault-free run still
// passes TestAllAlgorithmsServeEveryoneOnClassicRing).
func TestFaultDecisionStreamIsDeterministic(t *testing.T) {
	run := func() *Metrics {
		m, err := Run(context.Background(), Config{
			Topology:    graph.Ring(4),
			Algorithm:   LR1,
			Faults:      "freeze:1",
			MaxDuration: 100 * time.Millisecond,
			Seed:        42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	for p := 0; p < 4; p++ {
		if a.Crashes[p] != 1 || b.Crashes[p] != 1 {
			t.Errorf("philosopher %d crashes = %d/%d across runs, want 1/1", p, a.Crashes[p], b.Crashes[p])
		}
	}
	if a.TotalMeals != 0 || b.TotalMeals != 0 {
		t.Errorf("fully frozen table ate %d/%d meals", a.TotalMeals, b.TotalMeals)
	}
}

func TestMetricsOmitFaultCountersWithoutFaults(t *testing.T) {
	m, err := Run(context.Background(), Config{
		Topology:                  graph.Ring(3),
		Algorithm:                 LR1,
		TargetMealsPerPhilosopher: 1,
		MaxDuration:               2 * time.Second,
		Seed:                      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Crashes != nil || m.Rejoins != nil {
		t.Errorf("fault-free metrics carry crash counters: %v / %v", m.Crashes, m.Rejoins)
	}
}

// Package runtime executes generalized dining-philosopher systems as real
// concurrent Go programs: every philosopher is a goroutine, every fork is a
// mutex-protected shared object, and the Go scheduler plays the role of the
// paper's adversary. It complements the controlled step simulator (package
// sim): the simulator gives adversarial and reproducible interleavings, the
// runtime demonstrates the algorithms under genuine parallelism and provides
// the throughput numbers for the efficiency benchmarks (the "future work"
// dimension of the paper's Section 6).
package runtime

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/stats"
)

// Algorithm selects the philosopher protocol run by the goroutines.
type Algorithm string

// The available concurrent algorithms.
const (
	// LR1 is Lehmann & Rabin's free-choice algorithm (Table 1).
	LR1 Algorithm = "LR1"
	// LR2 is the courteous variant with request lists and guest books
	// (Table 2).
	LR2 Algorithm = "LR2"
	// GDP1 is the paper's random fork-numbering algorithm (Table 3).
	GDP1 Algorithm = "GDP1"
	// GDP2 is the lockout-free variant (Table 4).
	GDP2 Algorithm = "GDP2"
	// Ordered is the hierarchical (lower fork first, hold and wait) baseline.
	Ordered Algorithm = "ordered"
)

// Algorithms lists every concurrent algorithm.
func Algorithms() []Algorithm { return []Algorithm{LR1, LR2, GDP1, GDP2, Ordered} }

// fork is a shared fork protected by a mutex. All fields are accessed under
// mu, mirroring the paper's assumption that test-and-set operations on forks
// are atomic.
type fork struct {
	mu     sync.Mutex
	holder int // philosopher ID + 1; 0 when free
	nr     int
	// req and used are indexed by adjacency slot (graph.Topology.Slot).
	req  []bool
	used []int64
}

// tryTake atomically takes the fork for philosopher p if it is free and cond
// holds (cond is evaluated under the fork's lock). It returns true on
// success.
func (f *fork) tryTake(p int, cond func(f *fork) bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.holder != 0 {
		return false
	}
	if cond != nil && !cond(f) {
		return false
	}
	f.holder = p + 1
	return true
}

// release frees the fork; it panics if p does not hold it (an algorithm bug).
func (f *fork) release(p int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.holder != p+1 {
		panic(fmt.Sprintf("runtime: philosopher %d releasing fork held by %d", p, f.holder-1))
	}
	f.holder = 0
}

// Config describes a concurrent run.
type Config struct {
	// Topology is the system to run (required).
	Topology *graph.Topology
	// Algorithm selects the protocol (required).
	Algorithm Algorithm
	// M is the upper bound of the random fork numbers for GDP1/GDP2; 0 means
	// the number of forks.
	M int
	// TargetMealsPerPhilosopher stops the run once every philosopher has
	// eaten this many times (0 = run until the context or MaxDuration ends).
	TargetMealsPerPhilosopher int64
	// MaxDuration bounds the wall-clock duration (0 = 2 seconds).
	MaxDuration time.Duration
	// ThinkTime and EatTime simulate work; zero means a bare Gosched.
	ThinkTime time.Duration
	EatTime   time.Duration
	// Seed drives the per-philosopher random sources.
	Seed uint64
	// Faults optionally names a crash-family fault model to inject, using the
	// fault-spec grammar ("crash-rejoin:0.05,0.5@1,3", "freeze:0.1"). Crash
	// decisions are taken at think→try cycle boundaries from dedicated
	// per-philosopher prng streams, so the i-th decision of philosopher p is
	// determined by (Seed, p, i) and the algorithm streams stay bit-identical
	// to a fault-free run. Message-level models (lossy-grants, delayed-grants)
	// have no goroutine equivalent and are rejected; see SupportsFault.
	Faults string
}

// Metrics summarises a concurrent run.
type Metrics struct {
	// Meals[p] is the number of meals completed by philosopher p.
	Meals []int64
	// TotalMeals is the sum of Meals.
	TotalMeals int64
	// JainIndex is Jain's fairness index of Meals.
	JainIndex float64
	// Duration is the wall-clock duration of the run.
	Duration time.Duration
	// MealsPerSecond is the aggregate throughput.
	MealsPerSecond float64
	// Starved lists philosophers with zero meals.
	Starved []graph.PhilID
	// Crashes[p] and Rejoins[p] count the fault decisions taken against
	// philosopher p; both are nil when Config.Faults is empty.
	Crashes []int64
	Rejoins []int64
}

// Run executes the configured system until the target is reached, the
// duration expires, or ctx is cancelled.
func Run(ctx context.Context, cfg Config) (*Metrics, error) {
	if cfg.Topology == nil {
		return nil, errors.New("runtime: Config.Topology is required")
	}
	switch cfg.Algorithm {
	case LR1, LR2, GDP1, GDP2, Ordered:
	default:
		return nil, fmt.Errorf("runtime: unknown algorithm %q", cfg.Algorithm)
	}
	maxDuration := cfg.MaxDuration
	if maxDuration <= 0 {
		maxDuration = 2 * time.Second
	}
	m := cfg.M
	if m < cfg.Topology.NumForks() {
		m = cfg.Topology.NumForks()
	}
	var fd *faultDriver
	if cfg.Faults != "" {
		var err error
		if fd, err = newFaultDriver(cfg.Faults, cfg.Topology); err != nil {
			return nil, err
		}
	}

	topo := cfg.Topology
	n := topo.NumPhilosophers()
	forks := make([]*fork, topo.NumForks())
	for i := range forks {
		deg := topo.Degree(graph.ForkID(i))
		forks[i] = &fork{
			req:  make([]bool, deg),
			used: make([]int64, deg),
		}
		for s := range forks[i].used {
			forks[i].used[s] = -1
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, maxDuration)
	defer cancel()

	meals := make([]int64, n)
	var totalMeals atomic.Int64
	var clock atomic.Int64 // logical clock for guest-book ordering
	done := func() bool {
		select {
		case <-runCtx.Done():
			return true
		default:
		}
		if cfg.TargetMealsPerPhilosopher > 0 {
			for p := 0; p < n; p++ {
				if atomic.LoadInt64(&meals[p]) < cfg.TargetMealsPerPhilosopher {
					return false
				}
			}
			return true
		}
		return false
	}

	var wg sync.WaitGroup
	start := time.Now()
	// The algorithm streams are split first, in philosopher order, so a
	// faulted run hands each goroutine the same algorithm stream as the
	// fault-free run of the same seed; the fault streams come after.
	master := prng.New(cfg.Seed)
	algRngs := make([]*prng.Source, n)
	for p := range algRngs {
		algRngs[p] = master.Split()
	}
	faultRngs := make([]*prng.Source, n)
	if fd != nil {
		for p := range faultRngs {
			faultRngs[p] = master.Split()
		}
	}
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ph := &philosopher{
				id:     p,
				topo:   topo,
				forks:  forks,
				rng:    algRngs[p],
				m:      m,
				cfg:    cfg,
				clock:  &clock,
				done:   done,
				record: func() { atomic.AddInt64(&meals[p], 1); totalMeals.Add(1) },
				fd:     fd,
				frng:   faultRngs[p],
			}
			ph.run(cfg.Algorithm)
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &Metrics{
		Meals:      meals,
		TotalMeals: totalMeals.Load(),
		JainIndex:  stats.JainIndex(meals),
		Duration:   elapsed,
	}
	if elapsed > 0 {
		out.MealsPerSecond = float64(out.TotalMeals) / elapsed.Seconds()
	}
	for p, c := range meals {
		if c == 0 {
			out.Starved = append(out.Starved, graph.PhilID(p))
		}
	}
	if fd != nil {
		out.Crashes = fd.crashes
		out.Rejoins = fd.rejoins
	}
	return out, nil
}

// philosopher is the per-goroutine state of one philosopher.
type philosopher struct {
	id     int
	topo   *graph.Topology
	forks  []*fork
	rng    *prng.Source
	m      int
	cfg    Config
	clock  *atomic.Int64
	done   func() bool
	record func()
	fd     *faultDriver // nil without fault injection
	frng   *prng.Source // dedicated fault-decision stream
}

func (ph *philosopher) left() *fork  { return ph.forks[ph.topo.Left(graph.PhilID(ph.id))] }
func (ph *philosopher) right() *fork { return ph.forks[ph.topo.Right(graph.PhilID(ph.id))] }
func (ph *philosopher) slot(f *fork) int {
	for i, candidate := range ph.forks {
		if candidate == f {
			return ph.topo.Slot(graph.ForkID(i), graph.PhilID(ph.id))
		}
	}
	panic("runtime: slot of unknown fork")
}

func (ph *philosopher) pause(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	<-timer.C
}

func (ph *philosopher) think() { ph.pause(ph.cfg.ThinkTime) }
func (ph *philosopher) eat() {
	ph.pause(ph.cfg.EatTime)
	ph.record()
}

// cond evaluates the courtesy condition of LR2/GDP2 for this philosopher on
// fork f (must be called under f.mu, which fork.tryTake guarantees).
func (ph *philosopher) cond(f *fork) bool {
	my := ph.slot(f)
	mine := f.used[my]
	for s, requested := range f.req {
		if !requested || s == my {
			continue
		}
		if f.used[s] < mine {
			return false
		}
	}
	return true
}

func (ph *philosopher) setRequest(f *fork, v bool) {
	f.mu.Lock()
	f.req[ph.slot(f)] = v
	f.mu.Unlock()
}

func (ph *philosopher) signGuestBook(f *fork) {
	f.mu.Lock()
	f.used[ph.slot(f)] = ph.clock.Add(1)
	f.mu.Unlock()
}

func (ph *philosopher) nrOf(f *fork) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nr
}

// renumberIfTied implements the GDP step "if fork.nr = other(fork).nr then
// fork.nr := random[1, m]" on the held fork.
func (ph *philosopher) renumberIfTied(held, other *fork) {
	otherNR := ph.nrOf(other)
	held.mu.Lock()
	if held.nr == otherNR {
		held.nr = ph.rng.IntRange(1, ph.m)
	}
	held.mu.Unlock()
}

// run executes the selected algorithm until done() reports true. The fault
// decision happens at the cycle boundary, where the philosopher holds no
// forks and has no pending requests — the goroutine analogue of
// sim.World.Crash leaving the protocol state consistent.
func (ph *philosopher) run(alg Algorithm) {
	for !ph.done() {
		if ph.fd != nil && ph.fd.cycle(ph) {
			continue
		}
		ph.think()
		switch alg {
		case LR1:
			ph.lehmannRabin(false)
		case LR2:
			ph.lehmannRabin(true)
		case GDP1:
			ph.gdp(false)
		case GDP2:
			ph.gdp(true)
		case Ordered:
			ph.ordered()
		}
	}
}

// lehmannRabin is the trying-section of LR1 (courteous = false) and LR2
// (courteous = true).
func (ph *philosopher) lehmannRabin(courteous bool) {
	left, right := ph.left(), ph.right()
	if courteous {
		ph.setRequest(left, true)
		ph.setRequest(right, true)
		defer func() {
			ph.setRequest(left, false)
			ph.setRequest(right, false)
		}()
	}
	for !ph.done() {
		first, second := left, right
		if !ph.rng.Bool(0.5) {
			first, second = right, left
		}
		var firstCond func(*fork) bool
		if courteous {
			firstCond = ph.cond
		}
		// Line 3/4: busy-wait for the first fork.
		for !first.tryTake(ph.id, firstCond) {
			if ph.done() {
				return
			}
			runtime.Gosched()
		}
		// Line 4/5: one attempt at the second fork.
		if second.tryTake(ph.id, nil) {
			ph.eat()
			if courteous {
				ph.setRequest(left, false)
				ph.setRequest(right, false)
				ph.signGuestBook(left)
				ph.signGuestBook(right)
			}
			first.release(ph.id)
			second.release(ph.id)
			return
		}
		first.release(ph.id)
		runtime.Gosched()
	}
}

// gdp is the trying-section of GDP1 (courteous = false) and GDP2
// (courteous = true).
func (ph *philosopher) gdp(courteous bool) {
	left, right := ph.left(), ph.right()
	if courteous {
		ph.setRequest(left, true)
		ph.setRequest(right, true)
		defer func() {
			ph.setRequest(left, false)
			ph.setRequest(right, false)
		}()
	}
	for !ph.done() {
		first, second := left, right
		if ph.nrOf(left) <= ph.nrOf(right) {
			first, second = right, left
		}
		var firstCond func(*fork) bool
		if courteous {
			firstCond = ph.cond
		}
		for !first.tryTake(ph.id, firstCond) {
			if ph.done() {
				return
			}
			runtime.Gosched()
		}
		ph.renumberIfTied(first, second)
		if second.tryTake(ph.id, nil) {
			ph.eat()
			if courteous {
				ph.setRequest(left, false)
				ph.setRequest(right, false)
				ph.signGuestBook(left)
				ph.signGuestBook(right)
			}
			first.release(ph.id)
			second.release(ph.id)
			return
		}
		first.release(ph.id)
		runtime.Gosched()
	}
}

// ordered is the hierarchical baseline: lower fork first, hold and wait.
func (ph *philosopher) ordered() {
	lowID, highID := ph.topo.Left(graph.PhilID(ph.id)), ph.topo.Right(graph.PhilID(ph.id))
	if lowID > highID {
		lowID, highID = highID, lowID
	}
	low, high := ph.forks[lowID], ph.forks[highID]
	for !low.tryTake(ph.id, nil) {
		if ph.done() {
			return
		}
		runtime.Gosched()
	}
	for !high.tryTake(ph.id, nil) {
		if ph.done() {
			low.release(ph.id)
			return
		}
		runtime.Gosched()
	}
	ph.eat()
	low.release(ph.id)
	high.release(ph.id)
}

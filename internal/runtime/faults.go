package runtime

import (
	"fmt"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Fault injection for the goroutine runtime. Only the crash family
// translates: a crash is a goroutine parking at a think→try cycle boundary
// (where a philosopher holds nothing, mirroring sim.World.Crash dropping
// every fork) and a rejoin is the goroutine resuming. The message-level
// models (lossy-grants, delayed-grants) perturb fork-grant outcomes inside
// the step semantics and have no goroutine equivalent — the runtime's forks
// are mutexes, not message channels — so they are rejected up front.
//
// Decisions are driven by dedicated per-philosopher prng streams split from
// the master seed after the algorithm streams: the i-th fault decision of
// philosopher p is a pure function of (Config.Seed, p, i), and the algorithm
// streams are bit-identical to those of the fault-free run. How many
// decisions a run consumes still depends on wall-clock scheduling — that is
// the Go scheduler's adversary role, not the driver's.

// SupportsFault reports whether the concurrent runtime can inject the named
// fault model (see the fault-injection comment above).
func SupportsFault(name string) bool {
	return name == "crash-rejoin" || name == "freeze"
}

// faultDriver holds the resolved parameters of one crash-family fault model
// plus the shared crash/rejoin counters. The parameters are immutable after
// construction; the counters are updated atomically by the philosopher
// goroutines.
type faultDriver struct {
	spec    string
	rate    float64 // crash probability per cycle boundary
	rejoin  float64 // rejoin probability per crashed pause (0 = absorbing)
	target  []bool  // nil = every philosopher targeted
	crashes []int64
	rejoins []int64
}

// newFaultDriver parses and validates a fault spec for the runtime.
func newFaultDriver(spec string, topo *graph.Topology) (*faultDriver, error) {
	m, err := fault.NewFromSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(topo); err != nil {
		return nil, err
	}
	if !SupportsFault(m.Name()) {
		return nil, fmt.Errorf("runtime: the concurrent runtime injects only the crash-family fault models (crash-rejoin, freeze), not %s", m.Spec())
	}
	// The canonical spec has defaults resolved and targets sorted, so
	// re-parsing it yields the model's effective parameters without a wider
	// Model interface.
	name, cfg, err := fault.ParseSpec(m.Spec())
	if err != nil {
		return nil, err
	}
	n := topo.NumPhilosophers()
	fd := &faultDriver{
		spec:    m.Spec(),
		rate:    cfg.Rates[0],
		crashes: make([]int64, n),
		rejoins: make([]int64, n),
	}
	if name == "crash-rejoin" {
		fd.rejoin = cfg.Rates[1]
	}
	if len(cfg.Phils) > 0 {
		fd.target = make([]bool, n)
		for _, p := range cfg.Phils {
			fd.target[p] = true
		}
	}
	return fd, nil
}

// cycle runs philosopher ph's fault decision at one think→try cycle
// boundary: with the crash rate the philosopher crashes — the goroutine
// parks, holding nothing — and then idles until a rejoin decision (or the
// end of the run) revives it. It reports whether the cycle was consumed by a
// crash; a false return means the philosopher proceeds normally.
func (fd *faultDriver) cycle(ph *philosopher) bool {
	if fd.target != nil && !fd.target[ph.id] {
		return false
	}
	if !ph.frng.Bool(fd.rate) {
		return false
	}
	atomic.AddInt64(&fd.crashes[ph.id], 1)
	for !ph.done() {
		if fd.rejoin > 0 && ph.frng.Bool(fd.rejoin) {
			atomic.AddInt64(&fd.rejoins[ph.id], 1)
			return true
		}
		ph.pause(ph.cfg.ThinkTime)
	}
	return true
}

// Command dpsim runs a generalized dining-philosophers simulation from the
// command line: pick a topology, an algorithm, a scheduler and a seed, and it
// reports meals, waiting times, fairness and (optionally) the full event
// trace. With -trials > 1 the per-trial results stream in as workers finish;
// the printed aggregates are bit-identical for any -workers value.
//
// Examples:
//
//	dpsim -topology ring -n 5 -algorithm GDP2 -steps 100000
//	dpsim -topology figure1a -algorithm LR1 -scheduler adversary -trials 50
//	dpsim -topology theta -algorithm LR2 -scheduler adversary -trace
//	dpsim -topology ring -algorithm GDP1 -trials 20 -json
//	dpsim -topology ring -algorithm LR1 -faults delayed-grants:0.3,4   # fork grants
//	                                         # linger in flight for up to 4 steps
//
// -symmetry marks the engine for orbit-quotient exploration; it only affects
// exhaustive surfaces (and the configuration fingerprint), never simulation
// results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/dining"
	"repro/internal/cli"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	cfg := cli.Config{Topology: "ring", N: 5, Algorithm: "GDP1", Scheduler: "random", Steps: 100_000, Trials: 1, Seed: 1}
	cfg.Register(flag.CommandLine, cli.FlagTopology|cli.FlagAlgorithm|cli.FlagScheduler|
		cli.FlagSteps|cli.FlagTrials|cli.FlagSeed|cli.FlagWorkers|cli.FlagM|cli.FlagJSON|cli.FlagFaults|cli.FlagSymmetry)
	showTrace := flag.Bool("trace", false, "print the event trace of a single run (requires -trials 1, text output)")
	flag.Parse()
	ctx := context.Background()

	var log *trace.Log
	var extra []dining.Option
	if *showTrace {
		if cfg.Trials != 1 {
			cli.Fatal("dpsim", fmt.Errorf("-trace requires -trials 1 (a trace is one run's event stream), got -trials %d", cfg.Trials))
		}
		if cfg.JSON {
			cli.Fatal("dpsim", fmt.Errorf("-trace and -json are mutually exclusive"))
		}
		log = trace.NewLog(0)
		extra = append(extra, dining.WithRecorder(log))
	}
	eng, err := cfg.Engine(extra...)
	if err != nil {
		cli.Fatal("dpsim", err)
	}
	topo := eng.Topology()

	if !cfg.JSON {
		fmt.Printf("%s | algorithm %s | scheduler %s | %d step budget", topo, eng.Algorithm(), eng.Scheduler(), cfg.Steps)
		if f := eng.Faults(); f != "" {
			fmt.Printf(" | faults %s", f)
		}
		fmt.Println()
	}

	// Stream the trials as workers finish; keep them indexed so that every
	// printed aggregate is independent of completion order.
	byTrial := make([]dining.TrialResult, cfg.Trials)
	for tr, err := range eng.Trials(ctx, cfg.Trials) {
		if err != nil {
			cli.Fatal("dpsim", err)
		}
		byTrial[tr.Trial] = tr
		if !cfg.JSON && cfg.Trials > 1 {
			fmt.Printf("trial %3d: meals %d, mean wait %.1f steps\n", tr.Trial, tr.TotalEats, tr.MeanWaitSteps)
		}
	}

	if cfg.JSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(byTrial); err != nil {
			cli.Fatal("dpsim", err)
		}
		return
	}

	if cfg.Trials == 1 {
		res := byTrial[0]
		fmt.Printf("meals: %d (per philosopher %v)\n", res.TotalEats, res.EatsBy)
		fmt.Printf("first meal at step %d, mean wait %.1f steps, max scheduling gap %d\n",
			res.FirstEatStep, res.MeanWaitSteps, res.MaxScheduleGap)
		if len(res.Starved) > 0 {
			fmt.Printf("starved philosophers: %v\n", res.Starved)
		}
		if log != nil {
			fmt.Println("--- per-philosopher activity ---")
			fmt.Print(trace.Summarize(log, topo.NumPhilosophers()))
			fmt.Println("--- final state ---")
			fmt.Print(trace.RenderState(res.Result.Final))
		}
		return
	}

	var progressRuns int
	var mealsAgg, waitAgg, jainAgg stats.Running
	for _, tr := range byTrial {
		if tr.TotalEats > 0 {
			progressRuns++
		}
		mealsAgg.Add(float64(tr.TotalEats))
		waitAgg.Add(tr.MeanWaitSteps)
		jainAgg.Add(stats.JainIndex(tr.EatsBy))
	}
	fmt.Printf("runs with progress: %d/%d\n", progressRuns, cfg.Trials)
	fmt.Printf("meals per run:      %s\n", mealsAgg.String())
	fmt.Printf("mean wait steps:    %s\n", waitAgg.String())
	fmt.Printf("Jain fairness:      %s\n", jainAgg.String())
}

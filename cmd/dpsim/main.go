// Command dpsim runs a generalized dining-philosophers simulation from the
// command line: pick a topology, an algorithm, a scheduler and a seed, and it
// reports meals, waiting times, fairness and (optionally) the full event
// trace.
//
// Examples:
//
//	dpsim -topology ring -n 5 -algorithm GDP2 -steps 100000
//	dpsim -topology figure1a -algorithm LR1 -scheduler adversary -trials 50
//	dpsim -topology theta -algorithm LR2 -scheduler adversary -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		topology  = flag.String("topology", "ring", "topology name (ring, doubled-polygon, ring-chord, ring-pendant, theta, star, grid, figure1a..figure1d)")
		n         = flag.Int("n", 5, "topology size parameter (ignored by the figure topologies)")
		algorithm = flag.String("algorithm", "GDP1", fmt.Sprintf("algorithm %v", algo.Names()))
		scheduler = flag.String("scheduler", "random", "scheduler (round-robin, random, sticky, hungry-first, adversary, stubborn-adversary)")
		steps     = flag.Int64("steps", 100_000, "maximum atomic steps per run")
		seed      = flag.Uint64("seed", 1, "random seed")
		trials    = flag.Int("trials", 1, "number of independent runs")
		m         = flag.Int("m", 0, "GDP number range m (0 = number of forks)")
		showTrace = flag.Bool("trace", false, "print the event trace of the first run")
	)
	flag.Parse()

	topo, err := core.BuildTopology(*topology, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s | algorithm %s | scheduler %s | %d step budget\n", topo, *algorithm, *scheduler, *steps)

	var progressRuns int
	var mealsAgg, waitAgg, jainAgg stats.Running
	for i := 0; i < *trials; i++ {
		sys := core.System{
			Topology:    topo,
			Algorithm:   *algorithm,
			AlgoOptions: algo.Options{M: *m},
			Scheduler:   core.SchedulerKind(*scheduler),
			Seed:        *seed + uint64(i)*0x9e3779b9,
		}
		opts := sim.RunOptions{MaxSteps: *steps}
		var log *trace.Log
		if *showTrace && i == 0 {
			log = trace.NewLog(0)
			opts.Recorder = log
		}
		res, err := sys.Simulate(opts)
		if err != nil {
			fatal(err)
		}
		if res.Progress() {
			progressRuns++
		}
		mealsAgg.Add(float64(res.TotalEats))
		waitAgg.Add(res.MeanWaitSteps)
		jainAgg.Add(stats.JainIndex(res.EatsBy))
		if *trials == 1 {
			fmt.Printf("meals: %d (per philosopher %v)\n", res.TotalEats, res.EatsBy)
			fmt.Printf("first meal at step %d, mean wait %.1f steps, max scheduling gap %d\n",
				res.FirstEatStep, res.MeanWaitSteps, res.MaxScheduleGap)
			if len(res.Starved) > 0 {
				fmt.Printf("starved philosophers: %v\n", res.Starved)
			}
		}
		if log != nil {
			fmt.Println("--- per-philosopher activity ---")
			fmt.Print(trace.Summarize(log, topo.NumPhilosophers()))
			fmt.Println("--- final state ---")
			fmt.Print(trace.RenderState(res.Final))
		}
	}
	if *trials > 1 {
		fmt.Printf("runs with progress: %d/%d\n", progressRuns, *trials)
		fmt.Printf("meals per run:      %s\n", mealsAgg.String())
		fmt.Printf("mean wait steps:    %s\n", waitAgg.String())
		fmt.Printf("Jain fairness:      %s\n", jainAgg.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpsim:", err)
	os.Exit(1)
}

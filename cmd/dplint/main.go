// Command dplint runs the repository's static-analysis suite
// (internal/analysis) over the module and exits non-zero on any finding.
//
// The analyzers prove, at the AST/type level, the invariants the test suite
// otherwise only observes dynamically:
//
//	maporder      map iteration order must not reach returned/accumulated values without a sort
//	detsource     deterministic packages draw randomness only from internal/prng with explicit seeds
//	hotalloc      no closures in Outcome.Apply, no fmt on non-error hot paths
//	unsafeaudit   unsafe imports confined to the audited allowlist
//	registryname  registered built-in names canonical and unique per registry
//
// Usage:
//
//	dplint [packages]
//
// where packages is "./..." (the default — every package of the module) or
// an explicit list of package directories. Diagnostics print one per line as
// file:line:col: analyzer: message. A finding that is intentional is
// suppressed in place with an annotated reason:
//
//	//dplint:ok <analyzer> <reason>
//
// on the flagged line or the line above it. Annotations without a reason,
// naming an unknown analyzer, or suppressing nothing are themselves
// findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dplint [./... | package directories]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dplint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	pkgs, err := loadTargets(loader, args)
	if err != nil {
		return err
	}
	diags, err := analysis.Run(pkgs, analysis.NewAnalyzers())
	if err != nil {
		return err
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "dplint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	return nil
}

// loadTargets resolves the package arguments: no arguments or "./..." loads
// the whole module, anything else is a package directory.
func loadTargets(loader *analysis.Loader, args []string) ([]*analysis.Package, error) {
	if len(args) == 0 || len(args) == 1 && args[0] == "./..." {
		return loader.LoadAll()
	}
	var pkgs []*analysis.Package
	for _, arg := range args {
		pkg, err := loader.LoadDirDefault(arg)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

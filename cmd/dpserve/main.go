// Command dpserve is the long-lived checking service: it exposes the dining
// engine's streaming surfaces — property checking, Monte-Carlo trials and
// sweep grids — over HTTP as newline-delimited JSON, backed by a
// fingerprint-keyed cache of explored state spaces. Repeated or concurrent
// requests for the same engine configuration share one exploration; hot
// configurations are answered from the cache without re-exploring.
//
// Usage:
//
//	dpserve                          # listen on :8099
//	dpserve -addr :0                 # pick a free port (printed on stdout)
//	dpserve -cache-states 5000000    # grow the state-space cache budget
//	dpserve -workers 8 -shards 8     # defaults for requests that leave them 0
//	dpserve -max-request-states 200000  # admission cap: reject larger /v1/check requests (422)
//	dpserve -drain 30s               # graceful-shutdown drain timeout
//
//	curl -d '{"topology":"ring","n":3,"algorithm":"LR1"}' localhost:8099/v1/check
//	curl -d '{"topology":"ring","n":3,"algorithm":"LR1","faults":"delayed-grants:0.5,2","props":["progress-under-faults"]}' localhost:8099/v1/check
//	curl -d '{"topology":"ring","n":3,"algorithm":"GDP1","trials":10}' localhost:8099/v1/trials
//	curl localhost:8099/v1/stats
//
// See the internal/serve package documentation for the endpoint list, the
// NDJSON schema and the fingerprinting rules. On SIGINT/SIGTERM the server
// stops accepting connections, drains in-flight responses for -drain, then
// cancels any still-running explorations and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	cfg := cli.Config{Addr: ":8099", Drain: 15 * time.Second}
	cfg.Register(flag.CommandLine, cli.FlagWorkers|cli.FlagShards|cli.FlagServe)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		cli.Fatal("dpserve", err)
	}
	if err := run(&cfg); err != nil {
		cli.Fatal("dpserve", err)
	}
}

func run(cfg *cli.Config) error {
	// baseCtx bounds cache-filling explorations; it outlives any single
	// request and is cancelled only after the drain window, so a client
	// disconnect never kills work other requests share.
	baseCtx, cancelExplorations := context.WithCancel(context.Background())
	defer cancelExplorations()

	srv := serve.New(serve.Options{
		CacheStates:      cfg.CacheStates,
		Workers:          cfg.Workers,
		Shards:           cfg.Shards,
		MaxRequestStates: cfg.MaxRequestStates,
		BaseContext:      baseCtx,
	})
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	fmt.Printf("dpserve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}

	// Graceful shutdown: stop accepting, drain streaming responses for the
	// configured window, then cancel explorations so nothing is left running.
	fmt.Printf("dpserve: shutting down, draining for up to %v\n", cfg.Drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.Drain)
	defer cancel()
	err = httpSrv.Shutdown(drainCtx)
	cancelExplorations()
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("dpserve: drain timeout exceeded; closing remaining connections")
		return httpSrv.Close()
	}
	return err
}

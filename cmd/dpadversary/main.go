// Command dpadversary reproduces the adversarial walks of the paper: it runs
// each algorithm on the Section 3 topology (Figure 1a — six philosophers,
// three forks) against the fair livelock adversary, prints periodic state
// snapshots in the figures' arrow notation, and summarises who managed to
// eat. With -props (or -json) it additionally runs the property checker on
// the same instance through Engine.Check, printing the machine-checked
// verdicts and — for failing exhaustive properties — the replayable
// counterexample trace, the exhaustive twin of the walk it just showed.
//
// Usage:
//
//	dpadversary                         # Section 3 walk on figure1a
//	dpadversary -topology theta -n 1    # Theorem 2 walk on the theta graph
//	dpadversary -steps 30000 -snapshots 6
//	dpadversary -topology theta -props starvation-trap     # walk + verdicts
//	dpadversary -topology theta -json                      # verdicts as JSON
//	dpadversary -topology theta -json -symmetry            # orbit-quotient checks
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"

	"repro/dining"
	"repro/internal/cli"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// walkAlgorithms are the four algorithms the walk and the check section run.
var walkAlgorithms = []string{dining.LR1, dining.LR2, dining.GDP1, dining.GDP2}

func main() {
	cfg := cli.Config{Topology: "figure1a", Steps: 30_000, Seed: 3}
	cfg.Register(flag.CommandLine, cli.FlagTopology|cli.FlagSteps|cli.FlagSeed|cli.FlagProps|cli.FlagJSON|cli.FlagWorkers|cli.FlagShards|cli.FlagFaults|cli.FlagSymmetry)
	var (
		window    = flag.Int64("window", 512, "fairness window of the adversary")
		snapshots = flag.Int64("snapshots", 6, "number of state snapshots to print for the first algorithm")
		maxStates = flag.Int("max-states", 500_000, "state cap of the -props property checks (0 = default)")
	)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		cli.Fatal("dpadversary", err)
	}

	topo, err := cfg.BuildTopology()
	if err != nil {
		cli.Fatal("dpadversary", err)
	}

	if cfg.JSON {
		// Machine-readable mode: only the property verdicts, in the stable
		// PropertyResult wire format.
		results := checkProperties(topo, &cfg, *maxStates)
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			cli.Fatal("dpadversary", err)
		}
		fmt.Println(string(out))
		return
	}

	// The walk injects the -faults model into each algorithm's program, so
	// the printed snapshots show crashed philosophers and lost grants exactly
	// as the engine-based property checks see them.
	var faults dining.FaultModel
	if cfg.Faults != "" {
		faults, err = dining.NewFaultFromSpec(cfg.Faults)
		if err == nil {
			err = faults.Validate(topo)
		}
		if err != nil {
			cli.Fatal("dpadversary", err)
		}
	}

	fmt.Printf("Adversarial walk on %s (fairness window %d, %d steps", topo, *window, cfg.Steps)
	if faults != nil {
		fmt.Printf(", faults %s", faults.Spec())
	}
	fmt.Print(")\n\n")

	for i, name := range walkAlgorithms {
		prog, err := dining.NewAlgorithm(name, dining.AlgorithmOptions{})
		if err != nil {
			cli.Fatal("dpadversary", err)
		}
		if faults != nil {
			prog = faults.Wrap(topo, prog)
		}
		adversary, err := dining.NewScheduler(dining.Adversary, dining.SchedulerConfig{FairnessWindow: *window})
		if err != nil {
			cli.Fatal("dpadversary", err)
		}
		monitor := sched.NewFairnessMonitor(adversary)

		var walk trace.StateWalk
		var snapshotEvery int64
		if i == 0 && *snapshots > 0 {
			snapshotEvery = cfg.Steps / *snapshots
		}

		w := sim.NewWorld(topo)
		prog.Init(w)
		rng := prng.New(cfg.Seed)
		stepsDone := int64(0)
		for stepsDone < cfg.Steps {
			chunk := cfg.Steps - stepsDone
			if snapshotEvery > 0 && chunk > snapshotEvery {
				chunk = snapshotEvery
			}
			if _, err := sim.RunWorld(w, prog, monitor, rng, sim.RunOptions{MaxSteps: chunk}); err != nil {
				cli.Fatal("dpadversary", err)
			}
			stepsDone += chunk
			if snapshotEvery > 0 {
				walk.Snapshot(fmt.Sprintf("State after %d steps", stepsDone), w)
			}
		}

		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("meals: %d  (per philosopher: %v)\n", w.TotalEats, w.EatsBy)
		fmt.Printf("fairness: %s\n", monitor.Report())
		switch {
		case w.TotalEats == 0:
			fmt.Println("verdict: the fair adversary prevented every meal (the paper's negative result)")
		default:
			fmt.Println("verdict: progress despite the adversary")
		}
		if walk.Len() > 0 {
			fmt.Println()
			fmt.Print(walk.String())
		}
		fmt.Println()
	}

	// Also report the guest books for LR2 on the theta graph, the observation
	// closing the proof of Theorem 2.
	if topo.SatisfiesTheorem2() {
		prog, _ := dining.NewAlgorithm(dining.LR2, dining.AlgorithmOptions{})
		adversary, _ := dining.NewScheduler(dining.Adversary, dining.SchedulerConfig{FairnessWindow: *window})
		w := sim.NewWorld(topo)
		prog.Init(w)
		if _, err := sim.RunWorld(w, prog, adversary, prng.New(cfg.Seed), sim.RunOptions{MaxSteps: cfg.Steps}); err == nil && w.TotalEats == 0 {
			empty := true
			for f := 0; f < topo.NumForks(); f++ {
				if !w.GuestBookEmpty(dining.ForkID(f)) {
					empty = false
				}
			}
			fmt.Printf("LR2 guest books empty after the livelocked run: %v (the proof of Theorem 2 predicts they stay empty forever)\n", empty)
		}
	}

	if len(cfg.PropertyNames()) > 0 {
		fmt.Println()
		fmt.Println("Exhaustive property verdicts (Engine.Check):")
		for _, r := range checkProperties(topo, &cfg, *maxStates) {
			verdict := "PASS"
			if !r.Passed {
				verdict = "FAIL"
			}
			if r.Truncated {
				verdict += "*"
			}
			fmt.Printf("%-6s %-22s %-6s %s\n", r.Algorithm, r.Property, verdict, r.Detail)
			if r.Counterexample != nil {
				fmt.Print(r.Counterexample)
			}
		}
	}
}

// checkProperties runs the -props selection for every walk algorithm on topo
// and returns the flattened results.
func checkProperties(topo *dining.Topology, cfg *cli.Config, maxStates int) []dining.PropertyResult {
	var all []dining.PropertyResult
	for _, name := range walkAlgorithms {
		opts := []dining.Option{
			dining.WithMaxStates(maxStates),
			dining.WithWorkers(cfg.Workers),
			dining.WithShards(cfg.Shards),
		}
		if cfg.Faults != "" {
			opts = append(opts, dining.WithFaults(cfg.Faults))
		}
		if cfg.Symmetry {
			opts = append(opts, dining.WithSymmetry())
		}
		eng, err := dining.New(topo, name, opts...)
		if err != nil {
			cli.Fatal("dpadversary", err)
		}
		results, err := eng.CheckAll(context.Background(), cfg.PropertyNames()...)
		if err != nil {
			cli.Fatal("dpadversary", err)
		}
		all = append(all, results...)
	}
	return all
}

// Command dpadversary reproduces the adversarial walks of the paper: it runs
// each algorithm on the Section 3 topology (Figure 1a — six philosophers,
// three forks) against the fair livelock adversary, prints periodic state
// snapshots in the figures' arrow notation, and summarises who managed to
// eat.
//
// Usage:
//
//	dpadversary                         # Section 3 walk on figure1a
//	dpadversary -topology theta -n 1    # Theorem 2 walk on the theta graph
//	dpadversary -steps 30000 -snapshots 6
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		topology  = flag.String("topology", "figure1a", "topology name")
		n         = flag.Int("n", 0, "topology size parameter")
		steps     = flag.Int64("steps", 30_000, "atomic steps per run")
		seed      = flag.Uint64("seed", 3, "random seed")
		window    = flag.Int64("window", 512, "fairness window of the adversary")
		snapshots = flag.Int64("snapshots", 6, "number of state snapshots to print for the first algorithm")
	)
	flag.Parse()

	topo, err := core.BuildTopology(*topology, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Adversarial walk on %s (fairness window %d, %d steps)\n\n", topo, *window, *steps)

	for i, name := range []string{"LR1", "LR2", "GDP1", "GDP2"} {
		prog, err := algo.New(name, algo.Options{})
		if err != nil {
			fatal(err)
		}
		adversary := sched.NewBoundedFair(sched.NewGreedyLivelock(), *window)
		monitor := sched.NewFairnessMonitor(adversary)

		var walk trace.StateWalk
		var snapshotEvery int64
		if i == 0 && *snapshots > 0 {
			snapshotEvery = *steps / *snapshots
		}

		w := sim.NewWorld(topo)
		prog.Init(w)
		rng := prng.New(*seed)
		stepsDone := int64(0)
		for stepsDone < *steps {
			chunk := *steps - stepsDone
			if snapshotEvery > 0 && chunk > snapshotEvery {
				chunk = snapshotEvery
			}
			if _, err := sim.RunWorld(w, prog, monitor, rng, sim.RunOptions{MaxSteps: chunk}); err != nil {
				fatal(err)
			}
			stepsDone += chunk
			if snapshotEvery > 0 {
				walk.Snapshot(fmt.Sprintf("State after %d steps", stepsDone), w)
			}
		}

		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("meals: %d  (per philosopher: %v)\n", w.TotalEats, w.EatsBy)
		fmt.Printf("fairness: %s\n", monitor.Report())
		switch {
		case w.TotalEats == 0:
			fmt.Println("verdict: the fair adversary prevented every meal (the paper's negative result)")
		default:
			fmt.Println("verdict: progress despite the adversary")
		}
		if walk.Len() > 0 {
			fmt.Println()
			fmt.Print(walk.String())
		}
		fmt.Println()
	}

	// Also report the guest books for LR2 on the theta graph, the observation
	// closing the proof of Theorem 2.
	if topo.SatisfiesTheorem2() {
		prog, _ := algo.New("LR2", algo.Options{})
		adversary := sched.NewBoundedFair(sched.NewGreedyLivelock(), *window)
		w := sim.NewWorld(topo)
		prog.Init(w)
		if _, err := sim.RunWorld(w, prog, adversary, prng.New(*seed), sim.RunOptions{MaxSteps: *steps}); err == nil && w.TotalEats == 0 {
			empty := true
			for f := 0; f < topo.NumForks(); f++ {
				if !w.GuestBookEmpty(graph.ForkID(f)) {
					empty = false
				}
			}
			fmt.Printf("LR2 guest books empty after the livelocked run: %v (the proof of Theorem 2 predicts they stay empty forever)\n", empty)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpadversary:", err)
	os.Exit(1)
}

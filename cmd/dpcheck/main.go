// Command dpcheck runs the exhaustive model checker on the paper's minimal
// instances and prints the verdict table: for each (topology, algorithm,
// protected set) it answers whether a fair adversary can starve the protected
// philosophers forever — the machine-checked counterpart of Theorems 1–4.
//
// Usage:
//
//	dpcheck             # the standard verdict table
//	dpcheck -full       # also the larger (slower) instances
//	dpcheck -topology theta -n 1 -algorithm LR2    # one custom instance
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"repro/dining"
	"repro/internal/cli"
)

type checkCase struct {
	label     string
	topo      *dining.Topology
	algorithm string
	opts      dining.AlgorithmOptions
	protected []dining.PhilID
	expect    string // the paper's claim, for the table
	slow      bool
}

func main() {
	cfg := cli.Config{Algorithm: "GDP1"}
	cfg.Register(flag.CommandLine, cli.FlagAlgorithm)
	var (
		full      = flag.Bool("full", false, "include the larger, slower instances")
		topology  = flag.String("topology", "", "check a single custom topology instead of the standard table")
		n         = flag.Int("n", 0, "topology size parameter for -topology")
		maxStates = flag.Int("max-states", 0, "state cap (0 = default)")
	)
	flag.Parse()
	ctx := context.Background()

	if *topology != "" {
		topo, err := dining.NewTopology(*topology, *n)
		if err != nil {
			cli.Fatal("dpcheck", err)
		}
		eng, err := dining.New(topo, cfg.Algorithm, dining.WithMaxStates(*maxStates))
		if err != nil {
			cli.Fatal("dpcheck", err)
		}
		rep, err := eng.ModelCheck(ctx)
		if err != nil {
			cli.Fatal("dpcheck", err)
		}
		fmt.Println(rep)
		return
	}

	ring3 := []dining.PhilID{0, 1, 2}
	single := []dining.PhilID{0}
	theorem1Minimal := dining.Theorem1Minimal()
	theta := dining.Theorem2Minimal()
	cases := []checkCase{
		{"classic ring, global progress", dining.Ring(3), dining.LR1, dining.AlgorithmOptions{}, nil, "no trap (Lehmann-Rabin 1981)", false},
		{"Theorem 1 minimal, ring protected", theorem1Minimal, dining.LR1, dining.AlgorithmOptions{}, ring3, "trap exists (Theorem 1)", false},
		{"ring + pendant, ring protected", dining.RingWithPendant(3), dining.LR1, dining.AlgorithmOptions{}, ring3, "trap exists (Theorem 1)", false},
		{"ring + pendant, ring protected", dining.RingWithPendant(3), dining.LR2, dining.AlgorithmOptions{}, ring3, "no trap (Theorem 1 construction fails for LR2)", true},
		{"theta graph, global progress", theta, dining.LR2, dining.AlgorithmOptions{}, nil, "trap exists (Theorem 2)", false},
		{"theta graph, global progress", theta, dining.GDP1, dining.AlgorithmOptions{}, nil, "no trap (Theorem 3)", false},
		{"Theorem 1 minimal, global progress", theorem1Minimal, dining.GDP1, dining.AlgorithmOptions{}, nil, "no trap (Theorem 3)", false},
		{"theta graph, philosopher 0 protected", theta, dining.GDP1, dining.AlgorithmOptions{}, single, "trap exists (GDP1 is not lockout-free)", false},
		{"theta graph, philosopher 0 protected", theta, dining.GDP2, dining.AlgorithmOptions{}, single, "no trap (Theorem 4)", false},
		{"classic ring, philosopher 0 protected", dining.Ring(3), dining.LR2, dining.AlgorithmOptions{}, single, "no trap (LR2 lockout-free on rings)", false},
		{"classic ring, philosopher 0 protected", dining.Ring(3), dining.GDP2, dining.AlgorithmOptions{}, single, "TRAP — see EXPERIMENTS.md E-T4 (courtesy gap)", false},
		{"classic ring, philosopher 0 protected", dining.Ring(3), dining.GDP2, dining.AlgorithmOptions{CourtesyOnBothForks: true}, single, "no trap (strengthened courtesy)", false},
	}

	fmt.Printf("%-42s %-6s %-11s %-9s %-10s %s\n", "instance", "algo", "states", "time", "verdict", "paper / expectation")
	for _, c := range cases {
		if c.slow && !*full {
			continue
		}
		eng, err := dining.New(c.topo, c.algorithm,
			dining.WithAlgorithmOptions(c.opts),
			dining.WithProtected(c.protected...),
			dining.WithMaxStates(*maxStates))
		if err != nil {
			cli.Fatal("dpcheck", err)
		}
		start := time.Now()
		rep, err := eng.ModelCheck(ctx)
		if err != nil {
			cli.Fatal("dpcheck", err)
		}
		verdict := "no trap"
		if rep.FairAdversaryWins() {
			verdict = fmt.Sprintf("TRAP(%d)", rep.Trap.States)
		}
		if rep.Truncated {
			verdict += "*"
		}
		fmt.Printf("%-42s %-6s %-11d %-9s %-10s %s\n",
			c.label, c.algorithm, rep.States, time.Since(start).Round(time.Millisecond), verdict, c.expect)
	}
	fmt.Println("\nA \"trap\" is an end component of the no-protected-meal sub-MDP that offers an allowed")
	fmt.Println("action for every philosopher: a fair adversary can stay inside it forever with positive")
	fmt.Println("probability. '*' marks truncated explorations (verdicts are then only lower bounds).")
}

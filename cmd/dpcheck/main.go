// Command dpcheck runs the property checker on the paper's minimal instances
// and prints the verdict table: for each (topology, algorithm, protected set)
// it answers whether a fair adversary can starve the protected philosophers
// forever — the machine-checked counterpart of Theorems 1–4.
//
// Usage:
//
//	dpcheck             # the standard verdict table
//	dpcheck -full       # also the larger (slower) instances
//	dpcheck -topology theta -n 1 -algorithm LR2            # one custom instance
//	dpcheck -topology ring -n 3 -props progress,lockout-freedom
//	dpcheck -topology theta -algorithm LR2 -json           # stable JSON verdicts
//	dpcheck -workers 8 -shards 8                           # sharded parallel exploration
//	dpcheck -topology ring -n 5 -symmetry                  # orbit-quotient exploration
//	                                                       # (same verdicts, per-orbit state counts)
//	dpcheck -topology ring -n 3 -faults delayed-grants:0.5,2 \
//	        -props progress-under-faults                   # perturbed MDP with in-flight grants
//	dpcheck -full -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Exit status: in table mode dpcheck exits non-zero when any verdict
// contradicts the paper's expectation; in custom-instance mode it exits
// non-zero when any requested property fails — so CI can gate on either.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/dining"
	"repro/internal/cli"
)

type checkCase struct {
	label     string
	topo      *dining.Topology
	algorithm string
	opts      dining.AlgorithmOptions
	protected []dining.PhilID
	expect    string // the paper's claim, for the table
	wantTrap  bool   // whether the paper predicts a starvation trap
	slow      bool
}

func main() {
	cfg := cli.Config{Algorithm: "GDP1"}
	cfg.Register(flag.CommandLine, cli.FlagAlgorithm|cli.FlagWorkers|cli.FlagShards|cli.FlagJSON|cli.FlagProps|cli.FlagProfile|cli.FlagFaults|cli.FlagSymmetry)
	var (
		full      = flag.Bool("full", false, "include the larger, slower instances")
		topology  = flag.String("topology", "", "check a single custom topology instead of the standard table")
		n         = flag.Int("n", 0, "topology size parameter for -topology")
		maxStates = flag.Int("max-states", 0, "state cap (0 = default)")
	)
	flag.Parse()
	if err := cfg.Validate(); err != nil {
		cli.Fatal("dpcheck", err)
	}
	stopProfiling, err := cfg.StartProfiling()
	if err != nil {
		cli.Fatal("dpcheck", err)
	}
	ctx := context.Background()

	var code int
	switch {
	case *topology != "":
		code = checkCustom(ctx, &cfg, *topology, *n, *maxStates)
	case len(cfg.PropertyNames()) > 0:
		cli.Fatal("dpcheck", errors.New("-props requires -topology: the standard table always checks starvation-trap"))
	case cfg.Faults != "":
		cli.Fatal("dpcheck", errors.New("-faults requires -topology: the standard table pins the paper's fault-free expectations"))
	default:
		code = checkTable(ctx, &cfg, *full, *maxStates)
	}
	if err := stopProfiling(); err != nil {
		cli.Fatal("dpcheck", err)
	}
	os.Exit(code)
}

// checkCustom checks the -props selection (default: the exhaustive
// built-ins) on one custom instance and returns the process exit code:
// non-zero when any requested property fails.
func checkCustom(ctx context.Context, cfg *cli.Config, topology string, n, maxStates int) int {
	topo, err := dining.NewTopology(topology, n)
	if err != nil {
		cli.Fatal("dpcheck", err)
	}
	opts := []dining.Option{
		dining.WithMaxStates(maxStates),
		dining.WithWorkers(cfg.Workers),
		dining.WithShards(cfg.Shards),
	}
	if cfg.Faults != "" {
		opts = append(opts, dining.WithFaults(cfg.Faults))
	}
	if cfg.Symmetry {
		opts = append(opts, dining.WithSymmetry())
	}
	eng, err := dining.New(topo, cfg.Algorithm, opts...)
	if err != nil {
		cli.Fatal("dpcheck", err)
	}
	results, err := eng.CheckAll(ctx, cfg.PropertyNames()...)
	if err != nil {
		cli.Fatal("dpcheck", err)
	}
	failed := 0
	for _, r := range results {
		if !r.Passed {
			failed++
		}
	}
	if cfg.JSON {
		emitJSON(results)
	} else {
		if f := eng.Faults(); f != "" {
			fmt.Printf("%s on %s under faults %s\n\n", eng.Algorithm(), topo, f)
		} else {
			fmt.Printf("%s on %s\n\n", eng.Algorithm(), topo)
		}
		fmt.Printf("%-22s %-8s %s\n", "property", "verdict", "detail")
		for _, r := range results {
			verdict := "PASS"
			if !r.Passed {
				verdict = "FAIL"
			}
			if r.Truncated {
				verdict += "*"
			}
			fmt.Printf("%-22s %-8s %s\n", r.Property, verdict, r.Detail)
		}
		for _, r := range results {
			if r.Counterexample != nil {
				fmt.Println()
				fmt.Print(r.Counterexample)
			}
		}
		if failed > 0 {
			fmt.Printf("\n%d propert(y/ies) failed\n", failed)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// checkTable checks the standard paper table through the starvation-trap
// property and returns the exit code: non-zero when any verdict contradicts
// the paper's expectation.
func checkTable(ctx context.Context, cfg *cli.Config, full bool, maxStates int) int {
	ring3 := []dining.PhilID{0, 1, 2}
	single := []dining.PhilID{0}
	theorem1Minimal := dining.Theorem1Minimal()
	theta := dining.Theorem2Minimal()
	cases := []checkCase{
		{"classic ring, global progress", dining.Ring(3), dining.LR1, dining.AlgorithmOptions{}, nil, "no trap (Lehmann-Rabin 1981)", false, false},
		{"Theorem 1 minimal, ring protected", theorem1Minimal, dining.LR1, dining.AlgorithmOptions{}, ring3, "trap exists (Theorem 1)", true, false},
		{"ring + pendant, ring protected", dining.RingWithPendant(3), dining.LR1, dining.AlgorithmOptions{}, ring3, "trap exists (Theorem 1)", true, false},
		{"ring + pendant, ring protected", dining.RingWithPendant(3), dining.LR2, dining.AlgorithmOptions{}, ring3, "no trap (Theorem 1 construction fails for LR2)", false, true},
		{"theta graph, global progress", theta, dining.LR2, dining.AlgorithmOptions{}, nil, "trap exists (Theorem 2)", true, false},
		{"theta graph, global progress", theta, dining.GDP1, dining.AlgorithmOptions{}, nil, "no trap (Theorem 3)", false, false},
		{"Theorem 1 minimal, global progress", theorem1Minimal, dining.GDP1, dining.AlgorithmOptions{}, nil, "no trap (Theorem 3)", false, false},
		{"theta graph, philosopher 0 protected", theta, dining.GDP1, dining.AlgorithmOptions{}, single, "trap exists (GDP1 is not lockout-free)", true, false},
		{"theta graph, philosopher 0 protected", theta, dining.GDP2, dining.AlgorithmOptions{}, single, "no trap (Theorem 4)", false, false},
		{"classic ring, philosopher 0 protected", dining.Ring(3), dining.LR2, dining.AlgorithmOptions{}, single, "no trap (LR2 lockout-free on rings)", false, false},
		{"classic ring, philosopher 0 protected", dining.Ring(3), dining.GDP2, dining.AlgorithmOptions{}, single, "TRAP — see EXPERIMENTS.md E-T4 (courtesy gap)", true, false},
		{"classic ring, philosopher 0 protected", dining.Ring(3), dining.GDP2, dining.AlgorithmOptions{CourtesyOnBothForks: true}, single, "no trap (strengthened courtesy)", false, false},
	}

	var all []dining.PropertyResult
	mismatches := 0
	if !cfg.JSON {
		fmt.Printf("%-42s %-6s %-11s %-9s %-10s %s\n", "instance", "algo", "states", "time", "verdict", "paper / expectation")
	}
	for _, c := range cases {
		if c.slow && !full {
			continue
		}
		opts := []dining.Option{
			dining.WithAlgorithmOptions(c.opts),
			dining.WithProtected(c.protected...),
			dining.WithMaxStates(maxStates),
			dining.WithWorkers(cfg.Workers),
			dining.WithShards(cfg.Shards),
		}
		if cfg.Symmetry {
			opts = append(opts, dining.WithSymmetry())
		}
		eng, err := dining.New(c.topo, c.algorithm, opts...)
		if err != nil {
			cli.Fatal("dpcheck", err)
		}
		start := time.Now()
		results, err := eng.CheckAll(ctx, dining.StarvationTrap)
		if err != nil {
			cli.Fatal("dpcheck", err)
		}
		r := results[0]
		all = append(all, r)
		gotTrap := !r.Passed
		if gotTrap != c.wantTrap && !r.Truncated {
			mismatches++
		}
		if cfg.JSON {
			continue
		}
		verdict := "no trap"
		if gotTrap {
			verdict = fmt.Sprintf("TRAP(%d)", r.TrapStates)
		}
		if r.Truncated {
			verdict += "*"
		}
		fmt.Printf("%-42s %-6s %-11d %-9s %-10s %s\n",
			c.label, c.algorithm, r.States, time.Since(start).Round(time.Millisecond), verdict, c.expect)
	}
	if cfg.JSON {
		emitJSON(all)
	} else {
		fmt.Println("\nA \"trap\" is an end component of the no-protected-meal sub-MDP that offers an allowed")
		fmt.Println("action for every philosopher: a fair adversary can stay inside it forever with positive")
		fmt.Println("probability. '*' marks truncated explorations (verdicts are then only lower bounds).")
		if mismatches > 0 {
			fmt.Printf("\n%d verdict(s) contradict the paper's expectation\n", mismatches)
		}
	}
	if mismatches > 0 {
		return 1
	}
	return 0
}

// emitJSON writes the stable PropertyResult wire format (pinned by the
// dining package's golden tests) to stdout.
func emitJSON(results []dining.PropertyResult) {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		cli.Fatal("dpcheck", err)
	}
	fmt.Println(string(out))
}

// Command dpcheck runs the exhaustive model checker on the paper's minimal
// instances and prints the verdict table: for each (topology, algorithm,
// protected set) it answers whether a fair adversary can starve the protected
// philosophers forever — the machine-checked counterpart of Theorems 1–4.
//
// Usage:
//
//	dpcheck             # the standard verdict table
//	dpcheck -full       # also the larger (slower) instances
//	dpcheck -topology theta -n 1 -algorithm LR2    # one custom instance
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/modelcheck"
)

type checkCase struct {
	label     string
	topo      *graph.Topology
	algorithm string
	opts      algo.Options
	protected []graph.PhilID
	expect    string // the paper's claim, for the table
	slow      bool
}

func main() {
	var (
		full      = flag.Bool("full", false, "include the larger, slower instances")
		topology  = flag.String("topology", "", "check a single custom topology instead of the standard table")
		n         = flag.Int("n", 0, "topology size parameter for -topology")
		algorithm = flag.String("algorithm", "GDP1", "algorithm for -topology")
		maxStates = flag.Int("max-states", 0, "state cap (0 = default)")
	)
	flag.Parse()

	if *topology != "" {
		topo, err := core.BuildTopology(*topology, *n)
		if err != nil {
			fatal(err)
		}
		prog, err := algo.New(*algorithm, algo.Options{})
		if err != nil {
			fatal(err)
		}
		rep, err := modelcheck.Check(topo, prog, modelcheck.Options{MaxStates: *maxStates})
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		return
	}

	ring3 := []graph.PhilID{0, 1, 2}
	single := []graph.PhilID{0}
	cases := []checkCase{
		{"classic ring, global progress", graph.Ring(3), "LR1", algo.Options{}, nil, "no trap (Lehmann-Rabin 1981)", false},
		{"Theorem 1 minimal, ring protected", graph.Theorem1Minimal(), "LR1", algo.Options{}, ring3, "trap exists (Theorem 1)", false},
		{"ring + pendant, ring protected", graph.RingWithPendant(3), "LR1", algo.Options{}, ring3, "trap exists (Theorem 1)", false},
		{"ring + pendant, ring protected", graph.RingWithPendant(3), "LR2", algo.Options{}, ring3, "no trap (Theorem 1 construction fails for LR2)", true},
		{"theta graph, global progress", graph.Theorem2Minimal(), "LR2", algo.Options{}, nil, "trap exists (Theorem 2)", false},
		{"theta graph, global progress", graph.Theorem2Minimal(), "GDP1", algo.Options{}, nil, "no trap (Theorem 3)", false},
		{"Theorem 1 minimal, global progress", graph.Theorem1Minimal(), "GDP1", algo.Options{}, nil, "no trap (Theorem 3)", false},
		{"theta graph, philosopher 0 protected", graph.Theorem2Minimal(), "GDP1", algo.Options{}, single, "trap exists (GDP1 is not lockout-free)", false},
		{"theta graph, philosopher 0 protected", graph.Theorem2Minimal(), "GDP2", algo.Options{}, single, "no trap (Theorem 4)", false},
		{"classic ring, philosopher 0 protected", graph.Ring(3), "LR2", algo.Options{}, single, "no trap (LR2 lockout-free on rings)", false},
		{"classic ring, philosopher 0 protected", graph.Ring(3), "GDP2", algo.Options{}, single, "TRAP — see EXPERIMENTS.md E-T4 (courtesy gap)", false},
		{"classic ring, philosopher 0 protected", graph.Ring(3), "GDP2", algo.Options{CourtesyOnBothForks: true}, single, "no trap (strengthened courtesy)", false},
	}

	fmt.Printf("%-42s %-6s %-11s %-9s %-10s %s\n", "instance", "algo", "states", "time", "verdict", "paper / expectation")
	for _, c := range cases {
		if c.slow && !*full {
			continue
		}
		prog, err := algo.New(c.algorithm, c.opts)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		rep, err := modelcheck.Check(c.topo, prog, modelcheck.Options{Protected: c.protected, MaxStates: *maxStates})
		if err != nil {
			fatal(err)
		}
		verdict := "no trap"
		if rep.FairAdversaryWins() {
			verdict = fmt.Sprintf("TRAP(%d)", rep.Trap.States)
		}
		if rep.Truncated {
			verdict += "*"
		}
		fmt.Printf("%-42s %-6s %-11d %-9s %-10s %s\n",
			c.label, c.algorithm, rep.States, time.Since(start).Round(time.Millisecond), verdict, c.expect)
	}
	fmt.Println("\nA \"trap\" is an end component of the no-protected-meal sub-MDP that offers an allowed")
	fmt.Println("action for every philosopher: a fair adversary can stay inside it forever with positive")
	fmt.Println("probability. '*' marks truncated explorations (verdicts are then only lower bounds).")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpcheck:", err)
	os.Exit(1)
}
